// Per-flow metrics: goodput time series, packet delivery ratio, delay —
// the evaluation metrics of the paper's Section IV-C (Figs. 8-11).
#ifndef CAVENET_APP_FLOW_METRICS_H
#define CAVENET_APP_FLOW_METRICS_H

#include <cstdint>
#include <vector>

#include "util/sim_time.h"

namespace cavenet::app {

class FlowMetrics {
 public:
  /// `bin` is the goodput binning interval (the paper plots per-second
  /// goodput surfaces).
  explicit FlowMetrics(SimTime bin = SimTime::seconds(1)) : bin_(bin) {}

  void on_sent(SimTime now, std::size_t payload_bytes);
  void on_received(SimTime now, SimTime sent_at, std::size_t payload_bytes);

  std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

  /// Packet delivery ratio in [0, 1]; 0 when nothing was sent.
  double pdr() const noexcept;
  /// Mean end-to-end delay in seconds over delivered packets.
  double mean_delay_s() const noexcept;
  /// Maximum end-to-end delay in seconds.
  double max_delay_s() const noexcept { return max_delay_s_; }
  /// Time of the first delivery minus time of the first send: the paper's
  /// route-acquisition delay proxy. Negative when nothing arrived.
  double first_delivery_delay_s() const noexcept;

  /// Application-payload goodput per bin, bits/second. The series covers
  /// [0, horizon); bins after the last delivery are zero.
  std::vector<double> goodput_bps(SimTime horizon) const;

 private:
  SimTime bin_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  double delay_sum_s_ = 0.0;
  double max_delay_s_ = 0.0;
  SimTime first_tx_ = SimTime::max();
  SimTime first_rx_ = SimTime::max();
  std::vector<std::uint64_t> bin_bytes_;
};

}  // namespace cavenet::app

#endif  // CAVENET_APP_FLOW_METRICS_H
