// ProgressStream: campaign lifecycle events and heartbeats as JSONL.
//
// A 200-point campaign is a black box while it executes; this stream is
// the live view (and the channel a future job server will subscribe to).
// Writers emit one JSON object per line into progress.jsonl and,
// optionally, to stdout for `cavenet-run --progress`:
//
//   {"event":"campaign_started","points":200,"jobs":4,"wall_s":0}
//   {"event":"point_started","point":7,"name":"fig8/p30","wall_s":1.25}
//   {"event":"point_finished","point":7,"name":"fig8/p30","wall_s":3.75,
//    "point_wall_s":2.5,"events":812345,"events_per_wall_s":324938,
//    "finished":8,"points":200,"eta_s":480.2}
//   {"event":"heartbeat","finished":8,"running":4,"points":200,...}
//   {"event":"stall","running_for_s":61.2,...}   <- watchdog, no finish seen
//
// Progress is observability about WALL time, so this file is exactly the
// part of the stack that is allowed to be non-deterministic; nothing here
// feeds back into simulation state or manifests (wall-clock gauges are
// strip_volatile-covered). All methods are thread-safe: ensemble workers
// call point_started/point_finished concurrently.
#ifndef CAVENET_RUNNER_PROGRESS_H
#define CAVENET_RUNNER_PROGRESS_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cavenet::runner {

struct ProgressOptions {
  /// JSONL sink path; empty keeps the stream in memory only (tests, or
  /// --progress without an output directory).
  std::string path;
  /// Mirror every line to stdout (the --progress live view).
  bool echo_stdout = false;
  /// Heartbeat period in wall seconds; <= 0 disables the watchdog thread.
  double heartbeat_period_s = 5.0;
  /// A "stall" event fires when points are running but none has finished
  /// for this many wall seconds; <= 0 disables stall detection.
  double stall_after_s = 30.0;
};

class ProgressStream {
 public:
  ProgressStream(std::size_t total_points, int jobs, ProgressOptions options);
  ~ProgressStream();

  ProgressStream(const ProgressStream&) = delete;
  ProgressStream& operator=(const ProgressStream&) = delete;

  void point_started(std::size_t point, const std::string& name);
  /// `events` is the run's dispatched-event count; throughput and ETA are
  /// derived here from wall time.
  void point_finished(std::size_t point, const std::string& name,
                      std::uint64_t events);
  /// A point satisfied from checkpoints during --resume — or from the
  /// job server's result cache (no simulation either way).
  void point_resumed(std::size_t point, const std::string& name);
  /// A point whose body threw; `error` is the exception message. Failed
  /// points count toward completion so ETAs stay meaningful, and the
  /// campaign reports them (and exits non-zero) after the sweep drains.
  void point_failed(std::size_t point, const std::string& name,
                    const std::string& error);
  void campaign_finished();

  /// Emits one heartbeat line now. The watchdog thread calls this on its
  /// period; tests call it directly for deterministic coverage.
  void emit_heartbeat();

  std::size_t finished() const;
  /// Every line emitted so far (newline-terminated), for tests and for
  /// callers that keep the stream in memory.
  std::string jsonl() const;

 private:
  double wall_s_locked() const;
  void emit_locked(const std::string& line);
  void emit_heartbeat_locked();
  void watchdog_loop();

  const std::size_t total_points_;
  const int jobs_;
  const ProgressOptions options_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::ofstream file_;
  std::string buffer_;
  std::size_t started_ = 0;
  std::size_t finished_ = 0;
  std::size_t resumed_ = 0;
  std::size_t failed_ = 0;
  std::uint64_t events_total_ = 0;
  double finished_wall_s_sum_ = 0.0;  ///< per-point wall times, for ETA
  std::chrono::steady_clock::time_point last_finish_;
  bool stall_flagged_ = false;
  /// Wall-clock start per in-flight point, keyed by point index. Small
  /// campaigns dominate; linear scan over <= jobs entries is fine.
  std::vector<std::pair<std::size_t, std::chrono::steady_clock::time_point>>
      running_;

  bool stop_watchdog_ = false;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;
};

}  // namespace cavenet::runner

#endif  // CAVENET_RUNNER_PROGRESS_H
