#include "runner/progress.h"

#include <cstdio>
#include <iostream>

#include "obs/json.h"

namespace cavenet::runner {

namespace {

/// Seconds with fixed millisecond precision, pre-rendered: progress
/// lines are for humans and log scrapers, not for byte-determinism
/// (which wall time breaks anyway), and JsonWriter's %.17g would turn
/// 0.004 into 17 digits of binary-fraction noise.
std::string wall_json(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds);
  return buf;
}

}  // namespace

ProgressStream::ProgressStream(std::size_t total_points, int jobs,
                               ProgressOptions options)
    : total_points_(total_points),
      jobs_(jobs),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      last_finish_(start_) {
  if (!options_.path.empty()) {
    file_.open(options_.path, std::ios::binary | std::ios::trunc);
    if (!file_) {
      std::fprintf(stderr, "progress: cannot write %s\n",
                   options_.path.c_str());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::JsonWriter w;
    w.begin_object();
    w.key("event");
    w.value("campaign_started");
    w.key("points");
    w.value(static_cast<std::uint64_t>(total_points_));
    w.key("jobs");
    w.value(static_cast<std::int64_t>(jobs_));
    w.key("wall_s");
    w.raw(wall_json(0.0));
    w.end_object();
    emit_locked(w.str());
  }
  if (options_.heartbeat_period_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ProgressStream::~ProgressStream() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_watchdog_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

double ProgressStream::wall_s_locked() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void ProgressStream::emit_locked(const std::string& line) {
  buffer_ += line;
  buffer_ += '\n';
  if (file_.is_open()) {
    file_ << line << '\n';
    file_.flush();  // the stream is a liveness signal; buffering defeats it
  }
  if (options_.echo_stdout) {
    std::cout << line << '\n' << std::flush;
  }
}

void ProgressStream::point_started(std::size_t point, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++started_;
  running_.emplace_back(point, std::chrono::steady_clock::now());
  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("point_started");
  w.key("point");
  w.value(static_cast<std::uint64_t>(point));
  w.key("name");
  w.value(name);
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::point_finished(std::size_t point, const std::string& name,
                                    std::uint64_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  double point_wall_s = 0.0;
  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->first == point) {
      point_wall_s = std::chrono::duration<double>(now - it->second).count();
      running_.erase(it);
      break;
    }
  }
  ++finished_;
  events_total_ += events;
  finished_wall_s_sum_ += point_wall_s;
  last_finish_ = now;
  stall_flagged_ = false;

  // ETA: mean finished-point wall time scaled by what's left, shrunk by
  // the worker count actually observed running.
  const std::size_t remaining = total_points_ - finished_ - resumed_;
  const double mean_wall =
      finished_ > 0 ? finished_wall_s_sum_ / static_cast<double>(finished_)
                    : 0.0;
  const int lanes = jobs_ > 0 ? jobs_ : 1;
  const double eta_s =
      mean_wall * static_cast<double>(remaining) / static_cast<double>(lanes);

  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("point_finished");
  w.key("point");
  w.value(static_cast<std::uint64_t>(point));
  w.key("name");
  w.value(name);
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.key("point_wall_s");
  w.raw(wall_json(point_wall_s));
  w.key("events");
  w.value(events);
  w.key("events_per_wall_s");
  w.raw(wall_json(point_wall_s > 0.0
                      ? static_cast<double>(events) / point_wall_s
                      : 0.0));
  w.key("finished");
  w.value(static_cast<std::uint64_t>(finished_ + resumed_));
  w.key("points");
  w.value(static_cast<std::uint64_t>(total_points_));
  w.key("eta_s");
  w.raw(wall_json(eta_s));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::point_resumed(std::size_t point, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++resumed_;
  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("point_resumed");
  w.key("point");
  w.value(static_cast<std::uint64_t>(point));
  w.key("name");
  w.value(name);
  w.key("finished");
  w.value(static_cast<std::uint64_t>(finished_ + resumed_));
  w.key("points");
  w.value(static_cast<std::uint64_t>(total_points_));
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::point_failed(std::size_t point, const std::string& name,
                                  const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->first == point) {
      running_.erase(it);
      break;
    }
  }
  ++failed_;
  last_finish_ = now;  // the pool made progress; don't flag a stall
  stall_flagged_ = false;
  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("point_failed");
  w.key("point");
  w.value(static_cast<std::uint64_t>(point));
  w.key("name");
  w.value(name);
  w.key("error");
  w.value(error);
  w.key("failed");
  w.value(static_cast<std::uint64_t>(failed_));
  w.key("finished");
  w.value(static_cast<std::uint64_t>(finished_ + resumed_));
  w.key("points");
  w.value(static_cast<std::uint64_t>(total_points_));
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::campaign_finished() {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("campaign_finished");
  w.key("finished");
  w.value(static_cast<std::uint64_t>(finished_ + resumed_));
  w.key("points");
  w.value(static_cast<std::uint64_t>(total_points_));
  w.key("events");
  w.value(events_total_);
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::emit_heartbeat_locked() {
  obs::JsonWriter w;
  w.begin_object();
  w.key("event");
  w.value("heartbeat");
  w.key("finished");
  w.value(static_cast<std::uint64_t>(finished_ + resumed_));
  w.key("running");
  w.value(static_cast<std::uint64_t>(running_.size()));
  w.key("points");
  w.value(static_cast<std::uint64_t>(total_points_));
  w.key("events");
  w.value(events_total_);
  w.key("wall_s");
  w.raw(wall_json(wall_s_locked()));
  w.end_object();
  emit_locked(w.str());
}

void ProgressStream::emit_heartbeat() {
  std::lock_guard<std::mutex> lock(mutex_);
  emit_heartbeat_locked();
}

void ProgressStream::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_watchdog_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.heartbeat_period_s),
        [this] { return stop_watchdog_; });
    if (stop_watchdog_) return;
    emit_heartbeat_locked();
    if (options_.stall_after_s > 0.0 && !running_.empty() && !stall_flagged_) {
      const double since_finish =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        last_finish_)
              .count();
      if (since_finish >= options_.stall_after_s) {
        stall_flagged_ = true;  // once per stall; a finish re-arms it
        obs::JsonWriter w;
        w.begin_object();
        w.key("event");
        w.value("stall");
        w.key("running");
        w.value(static_cast<std::uint64_t>(running_.size()));
        w.key("running_for_s");
        w.raw(wall_json(since_finish));
        w.key("finished");
        w.value(static_cast<std::uint64_t>(finished_ + resumed_));
        w.key("points");
        w.value(static_cast<std::uint64_t>(total_points_));
        w.key("wall_s");
        w.raw(wall_json(wall_s_locked()));
        w.end_object();
        emit_locked(w.str());
      }
    }
  }
}

std::size_t ProgressStream::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_ + resumed_;
}

std::string ProgressStream::jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_;
}

}  // namespace cavenet::runner
