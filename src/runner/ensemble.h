// Deterministic parallel ensemble execution.
//
// Every paper figure is a Monte-Carlo ensemble (densities x trials,
// senders x protocols, seeds x replications) whose replications are
// mutually independent — the textbook fan-out. EnsembleRunner spreads
// those replications over a persistent runner::Executor pool (chunk
// claiming rebalances uneven replications, the work-stealing degenerate
// case) while guaranteeing that the observable output is BITWISE
// IDENTICAL to a serial run:
//
//  * each replication draws from Rng::substream(index), a counter-based
//    stream split keyed on the replication index alone, so the random
//    numbers a replication sees never depend on which worker ran it;
//  * each replication records into a private StatsRegistry; after all
//    workers join, the registries are merged in replication order, which
//    reproduces exactly what sequential reuse of one shared registry
//    would have recorded;
//  * results land in an index-addressed slot, so the returned vector is
//    in replication order no matter the completion order.
//
// jobs == 1 runs inline on the calling thread through the very same
// substream/registry/merge path, so `--jobs 1` vs `--jobs N` differ only
// in wall-clock time.
#ifndef CAVENET_RUNNER_ENSEMBLE_H
#define CAVENET_RUNNER_ENSEMBLE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/stats_registry.h"
#include "runner/executor.h"
#include "util/rng.h"

namespace cavenet::runner {

/// Resolves a --jobs request: values <= 0 mean "one worker per hardware
/// thread" (never less than 1). Same rule as exec::resolve_workers.
int resolve_jobs(int requested) noexcept;

/// Parses the standard ensemble-bench command line: `--jobs N` (N <= 0
/// resolves to the hardware thread count; default 1, the serial
/// behaviour). Throws std::invalid_argument on unknown or malformed
/// flags so typos fail loudly instead of silently running serial.
int parse_jobs_flag(int argc, const char* const* argv);

struct EnsembleOptions {
  /// Worker threads; <= 0 resolves to the hardware thread count.
  /// Ignored when `executor` is injected.
  int jobs = 1;
  /// Seed material for the per-replication substreams. Two runners with
  /// the same (master_seed, rng_stream) hand replication i the same
  /// stream; vary rng_stream to decorrelate nested ensembles.
  std::uint64_t master_seed = 1;
  std::uint64_t rng_stream = 0x656e73;  // "ens"
  /// Shared execution pool to schedule replications on instead of a
  /// runner-owned one (non-owning; must outlive the runner). Campaign
  /// point scheduling and the kernel's threaded shard dispatch can ride
  /// one pool this way.
  Executor* executor = nullptr;
};

/// What a replication body receives: its index, a private RNG stream and
/// a private stats registry. The registry outlives the body call and is
/// merged into the caller's registry in index order.
struct ReplicationContext {
  std::size_t index = 0;      ///< replication id, 0..total-1
  std::size_t total = 0;      ///< replication count of this ensemble
  Rng rng;                    ///< substream(index); independent per replication
  obs::StatsRegistry* stats = nullptr;  ///< private to this replication
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(EnsembleOptions options = {});

  /// Resolved worker count (>= 1).
  int jobs() const noexcept { return jobs_; }

  /// The pool replications are scheduled on: the injected executor, the
  /// runner-owned persistent ThreadPoolExecutor (jobs > 1), or an inline
  /// executor (jobs == 1).
  Executor& executor() noexcept { return *executor_; }

  /// Runs body(ctx) once per replication 0..n-1 across jobs() executor
  /// lanes. When `merged` is non-null, the per-replication
  /// registries are folded into it in replication order after the pool
  /// drains. If one or more bodies throw, the exception of the
  /// lowest-indexed failing replication is rethrown (deterministically)
  /// after all workers have stopped.
  void for_each(std::size_t n,
                const std::function<void(ReplicationContext&)>& body,
                obs::StatsRegistry* merged = nullptr);

  /// for_each() collecting one default-constructible Result per
  /// replication, returned in replication order.
  template <typename Result, typename Body>
  std::vector<Result> map(std::size_t n, Body&& body,
                          obs::StatsRegistry* merged = nullptr) {
    std::vector<Result> results(n);
    for_each(
        n,
        [&results, &body](ReplicationContext& ctx) {
          results[ctx.index] = body(ctx);
        },
        merged);
    return results;
  }

 private:
  EnsembleOptions options_;
  int jobs_ = 1;
  /// Persistent pool, created once at construction and reused by every
  /// for_each call (replaces the per-call thread spawning the runner
  /// started with).
  std::unique_ptr<ThreadPoolExecutor> pool_;
  InlineExecutor inline_executor_;
  Executor* executor_ = &inline_executor_;
};

}  // namespace cavenet::runner

#endif  // CAVENET_RUNNER_ENSEMBLE_H
