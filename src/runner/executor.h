// The runner-facing name of the shared execution-pool abstraction.
//
// EnsembleRunner schedules campaign points and figure replications on a
// runner::Executor; the simulation kernel's threaded shard dispatch
// (netsim/parallel.h) runs on the same interface. Both resolve to
// cavenet::exec (util/executor.h) — one pool seam, which is also where
// ROADMAP item 4's multi-machine job server plugs in.
#ifndef CAVENET_RUNNER_EXECUTOR_H
#define CAVENET_RUNNER_EXECUTOR_H

#include "util/executor.h"

namespace cavenet::runner {

using Executor = exec::Executor;
using InlineExecutor = exec::InlineExecutor;
using ThreadPoolExecutor = exec::ThreadPoolExecutor;

}  // namespace cavenet::runner

#endif  // CAVENET_RUNNER_EXECUTOR_H
