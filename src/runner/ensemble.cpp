#include "runner/ensemble.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/cli_args.h"

namespace cavenet::runner {

int resolve_jobs(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int parse_jobs_flag(int argc, const char* const* argv) {
  const CliArgs args(argc, argv);
  const auto jobs = static_cast<int>(args.get_int("jobs", 1));
  args.reject_unknown_flags();
  return resolve_jobs(jobs);
}

EnsembleRunner::EnsembleRunner(EnsembleOptions options)
    : options_(options), jobs_(resolve_jobs(options.jobs)) {}

namespace {

/// One worker's task queue. The owner pops from the front of its own
/// block (cache-friendly ascending order); thieves steal from the back,
/// so owner and thieves meet in the middle instead of fighting over the
/// same end. A plain mutex per deque is plenty: tasks here are whole
/// simulation replications, queue operations are nanoseconds against
/// seconds of work.
struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  bool pop_front(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    out = tasks.front();
    tasks.pop_front();
    return true;
  }

  bool steal_back(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

void EnsembleRunner::for_each(
    std::size_t n, const std::function<void(ReplicationContext&)>& body,
    obs::StatsRegistry* merged) {
  if (n == 0) return;

  // Per-replication registries exist even when no merge target was given:
  // the body may rely on ctx.stats being valid.
  std::vector<std::unique_ptr<obs::StatsRegistry>> registries;
  registries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    registries.push_back(std::make_unique<obs::StatsRegistry>());
  }

  const Rng base(options_.master_seed, options_.rng_stream);
  const auto run_one = [&](std::size_t index) {
    ReplicationContext ctx;
    ctx.index = index;
    ctx.total = n;
    ctx.rng = base.substream(index);
    ctx.stats = registries[index].get();
    body(ctx);
  };

  const auto workers = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Block-partition the index range so each worker starts on a
    // contiguous slice; stealing rebalances when replication costs are
    // uneven (they are: jammed scenarios dispatch far more events).
    std::vector<WorkQueue> queues(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * n / workers;
      const std::size_t end = (w + 1) * n / workers;
      for (std::size_t i = begin; i < end; ++i) queues[w].tasks.push_back(i);
    }

    // Of all failing replications, deterministically keep the exception
    // of the lowest index — a serial run would have hit that one first.
    std::mutex failure_mutex;
    std::size_t first_failed = n;
    std::exception_ptr failure;

    const auto worker_loop = [&](std::size_t self) {
      for (;;) {
        std::size_t index;
        if (!queues[self].pop_front(index)) {
          bool stole = false;
          for (std::size_t k = 1; k < workers && !stole; ++k) {
            stole = queues[(self + k) % workers].steal_back(index);
          }
          // Nothing anywhere: no tasks are ever enqueued after start,
          // so empty queues mean the remaining work is already running.
          if (!stole) return;
        }
        try {
          run_one(index);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (index < first_failed) {
            first_failed = index;
            failure = std::current_exception();
          }
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (std::thread& t : threads) t.join();
    if (failure) std::rethrow_exception(failure);
  }

  if (merged != nullptr) {
    for (const auto& registry : registries) merged->merge_from(*registry);
  }
}

}  // namespace cavenet::runner
