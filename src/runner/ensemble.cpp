#include "runner/ensemble.h"

#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/cli_args.h"

namespace cavenet::runner {

int resolve_jobs(int requested) noexcept {
  return exec::resolve_workers(requested);
}

int parse_jobs_flag(int argc, const char* const* argv) {
  const CliArgs args(argc, argv);
  const auto jobs = static_cast<int>(args.get_int("jobs", 1));
  args.reject_unknown_flags();
  return resolve_jobs(jobs);
}

EnsembleRunner::EnsembleRunner(EnsembleOptions options)
    : options_(options), jobs_(resolve_jobs(options.jobs)) {
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
    jobs_ = executor_->workers();
  } else if (jobs_ > 1) {
    pool_ = std::make_unique<ThreadPoolExecutor>(jobs_);
    executor_ = pool_.get();
  }
}

void EnsembleRunner::for_each(
    std::size_t n, const std::function<void(ReplicationContext&)>& body,
    obs::StatsRegistry* merged) {
  if (n == 0) return;

  // Per-replication registries exist even when no merge target was given:
  // the body may rely on ctx.stats being valid.
  std::vector<std::unique_ptr<obs::StatsRegistry>> registries;
  registries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    registries.push_back(std::make_unique<obs::StatsRegistry>());
  }

  // Of all failing replications, deterministically keep the exception of
  // the lowest index — a serial run would have hit that one first. The
  // catch sits inside the lane body (not the executor's chunk-level
  // rethrow) so one failure never skips the other replications sharing
  // its chunk.
  std::mutex failure_mutex;
  std::size_t first_failed = n;
  std::exception_ptr failure;

  const Rng base(options_.master_seed, options_.rng_stream);
  executor_->parallel_for(n, 1, [&](std::size_t index) {
    try {
      ReplicationContext ctx;
      ctx.index = index;
      ctx.total = n;
      ctx.rng = base.substream(index);
      ctx.stats = registries[index].get();
      body(ctx);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (index < first_failed) {
        first_failed = index;
        failure = std::current_exception();
      }
    }
  });
  if (failure) std::rethrow_exception(failure);

  if (merged != nullptr) {
    for (const auto& registry : registries) merged->merge_from(*registry);
  }
}

}  // namespace cavenet::runner
