#include "netsim/scheduler.h"

#include <chrono>
#include <stdexcept>

#include "obs/kernel_profiler.h"

namespace cavenet::netsim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> action,
                               std::string_view component) {
  if (at < last_dispatched_) {
    throw std::logic_error("scheduling into the past: " + at.to_string() +
                           " < " + last_dispatched_.to_string());
  }
  auto rec = std::make_shared<detail::EventRecord>();
  rec->at = at;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  if (!component.empty()) [[unlikely]] {
    rec->component_id = intern_component(component);
  }
  EventId id{std::weak_ptr<detail::EventRecord>(rec)};
  queue_.push(std::move(rec));
  return id;
}

std::uint32_t Scheduler::intern_component(std::string_view component) {
  // Labels are string literals, so the pointer compare almost always hits;
  // the content compare merges identical literals from different TUs.
  for (std::uint32_t i = 1; i < components_.size(); ++i) {
    if (components_[i].data() == component.data() ||
        components_[i] == component) {
      return i;
    }
  }
  components_.push_back(component);
  return static_cast<std::uint32_t>(components_.size() - 1);
}

void Scheduler::drop_cancelled() const {
  while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
}

bool Scheduler::empty() const noexcept {
  drop_cancelled();
  return queue_.empty();
}

SimTime Scheduler::next_time() const noexcept {
  drop_cancelled();
  return queue_.empty() ? SimTime::max() : queue_.top()->at;
}

bool Scheduler::run_one() {
  drop_cancelled();
  if (queue_.empty()) return false;
  const auto rec = queue_.top();
  queue_.pop();
  last_dispatched_ = rec->at;
  ++dispatched_;
  if (profiler_ == nullptr) [[likely]] {
    rec->action();
  } else {
    dispatch_profiled(*rec);
  }
  return true;
}

__attribute__((noinline)) void Scheduler::dispatch_profiled(
    const detail::EventRecord& rec) {
  const auto start = std::chrono::steady_clock::now();
  rec.action();
  const auto end = std::chrono::steady_clock::now();
  profiler_->record(
      components_[rec.component_id],
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
}

}  // namespace cavenet::netsim
