#include "netsim/scheduler.h"

#include <stdexcept>

namespace cavenet::netsim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> action) {
  if (at < last_dispatched_) {
    throw std::logic_error("scheduling into the past: " + at.to_string() +
                           " < " + last_dispatched_.to_string());
  }
  auto rec = std::make_shared<detail::EventRecord>();
  rec->at = at;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  EventId id{std::weak_ptr<detail::EventRecord>(rec)};
  queue_.push(std::move(rec));
  return id;
}

void Scheduler::drop_cancelled() const {
  while (!queue_.empty() && queue_.top()->cancelled) queue_.pop();
}

bool Scheduler::empty() const noexcept {
  drop_cancelled();
  return queue_.empty();
}

SimTime Scheduler::next_time() const noexcept {
  drop_cancelled();
  return queue_.empty() ? SimTime::max() : queue_.top()->at;
}

bool Scheduler::run_one() {
  drop_cancelled();
  if (queue_.empty()) return false;
  const auto rec = queue_.top();
  queue_.pop();
  last_dispatched_ = rec->at;
  ++dispatched_;
  rec->action();
  return true;
}

}  // namespace cavenet::netsim
