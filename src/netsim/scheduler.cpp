#include "netsim/scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/kernel_profiler.h"

namespace cavenet::netsim {

bool Scheduler::run_one() {
  drop_cancelled();
  if (heap_.empty()) return false;

  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
  heap_.pop_back();

  detail::EventRecord& rec = record_at(top.slot);
  last_dispatched_ = top.at;
  ++dispatched_;

  // The action runs in place in its slot. That is safe because the slot
  // stays reserved until the action returns: scheduling from inside the
  // handler cannot recycle it (it is not on the free list), and a
  // mid-dispatch cancel of the running event only bumps the generation —
  // see cancel_event. pending() on the running event therefore reports
  // true until it completes, matching the old shared_ptr kernel.
  running_slot_ = top.slot;
  running_generation_ = top.generation;
  if (profiler_ == nullptr) [[likely]] {
    rec.action();
  } else {
    dispatch_profiled(rec.action, rec.component_id);
  }
  running_slot_ = kNoSlot;

  // Retire the slot. Nothing else can have freed it during dispatch, so
  // this cannot double-release; the generation check keeps a self-cancel
  // (which already bumped it) from bumping twice.
  rec.action.reset();
  if (rec.generation == top.generation) ++rec.generation;
  free_.push_back(top.slot);
  return true;
}

__attribute__((noinline)) void Scheduler::dispatch_profiled(
    detail::InlineAction& action, std::uint32_t component_id) {
  const auto start = std::chrono::steady_clock::now();
  action();
  const auto end = std::chrono::steady_clock::now();
  profiler_->record(
      components_[component_id],
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
}

std::uint32_t Scheduler::acquire_slot(SimTime at) {
  if (at < last_dispatched_) {
    throw std::logic_error("scheduling into the past: " + at.to_string() +
                           " < " + last_dispatched_.to_string());
  }
  if (free_.empty()) [[unlikely]] grow_slab();
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  return slot;
}

void Scheduler::release_slot(std::uint32_t slot) noexcept {
  detail::EventRecord& rec = record_at(slot);
  rec.action.reset();
  ++rec.generation;
  free_.push_back(slot);
}

void Scheduler::push_entry(SimTime at, std::uint32_t slot,
                           std::uint32_t generation) {
  heap_.push_back(HeapEntry{at, (*seq_src_)++, slot, generation});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

void Scheduler::grow_slab() {
  chunks_.push_back(std::make_unique<detail::EventRecord[]>(kChunkSize));
  free_.reserve(free_.size() + kChunkSize);
  // Hand out low slot indices first; cosmetic, but early runs then touch
  // one cache-warm chunk.
  for (std::uint32_t i = 0; i < kChunkSize; ++i) {
    free_.push_back(slot_count_ + kChunkSize - 1 - i);
  }
  slot_count_ += kChunkSize;
  obs_slots_.inc(kChunkSize);
}

void Scheduler::cancel_event(std::uint32_t slot,
                             std::uint32_t generation) noexcept {
  if (slot >= slot_count_) return;
  detail::EventRecord& rec = record_at(slot);
  if (rec.generation != generation) return;  // expired or recycled
  obs_cancelled_.inc();
  if (slot == running_slot_ && generation == running_generation_) {
    // The running event is being cancelled from inside its own dispatch.
    // Its action is executing right now, so only invalidate the handle;
    // run_one drops the action and frees the slot when it returns.
    ++rec.generation;
    return;
  }
  // Eager release: the action (and every packet/pointer it captured)
  // dies now, not when the tombstone surfaces at the heap top.
  release_slot(slot);
  ++tombstones_;
  maybe_compact();
}

bool Scheduler::event_pending(std::uint32_t slot,
                              std::uint32_t generation) const noexcept {
  if (slot >= slot_count_) return false;
  return record_at(slot).generation == generation;
}

void Scheduler::drop_cancelled_slow() const {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (record_at(top.slot).generation == top.generation) return;
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    --tombstones_;
  }
}

void Scheduler::maybe_compact() {
  if (heap_.size() < kCompactMin || tombstones_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const HeapEntry& e) {
    return record_at(e.slot).generation != e.generation;
  });
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  tombstones_ = 0;
  obs_compactions_.inc();
}

std::uint32_t Scheduler::intern_component(std::string_view component) {
  // Labels are string literals, so the pointer compare almost always hits;
  // the content compare merges identical literals from different TUs.
  for (std::uint32_t i = 1; i < components_.size(); ++i) {
    if (components_[i].data() == component.data() ||
        components_[i] == component) {
      return i;
    }
  }
  components_.push_back(component);
  return static_cast<std::uint32_t>(components_.size() - 1);
}

void Scheduler::bind_stats(obs::StatsRegistry& registry) {
  obs_slots_ = registry.counter("sched.pool.slots");
  obs_action_inline_ = registry.counter("sched.pool.action.inline");
  obs_action_heap_ = registry.counter("sched.pool.action.heap");
  obs_cancelled_ = registry.counter("sched.pool.cancelled");
  obs_compactions_ = registry.counter("sched.pool.compactions");
  // Re-publish slab capacity grown before the registry was attached.
  obs_slots_.inc(slot_count_);
}

}  // namespace cavenet::netsim
