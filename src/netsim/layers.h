// Layer interfaces gluing PHY <- MAC <- routing <- transport/apps.
//
// Each interface is minimal so tests can substitute fakes (e.g. a perfect
// link layer under the routing tests).
#ifndef CAVENET_NETSIM_LAYERS_H
#define CAVENET_NETSIM_LAYERS_H

#include <functional>

#include "netsim/address.h"
#include "netsim/packet.h"

namespace cavenet::netsim {

/// Link layer (the 802.11 MAC implements this). `dest` may be kBroadcast.
class LinkLayer {
 public:
  virtual ~LinkLayer() = default;

  /// Queues a frame for transmission to a neighbour. Frames sent with
  /// `priority` jump ahead of queued normal frames (ns-2 gives routing
  /// control packets the same treatment in its interface queue).
  virtual void send(Packet packet, NodeId dest) = 0;
  virtual void send_priority(Packet packet, NodeId dest) {
    send(std::move(packet), dest);
  }

  /// Upcall for received frames: (packet, link source).
  using ReceiveCallback = std::function<void(Packet, NodeId from)>;
  virtual void set_receive_callback(ReceiveCallback cb) = 0;

  /// Upcall when a unicast frame exhausted its retries — the routing layer
  /// uses this as link-breakage detection (paper: DYMO "examining feedback
  /// obtained from the data link layer").
  using TxFailedCallback = std::function<void(const Packet&, NodeId dest)>;
  virtual void set_tx_failed_callback(TxFailedCallback cb) = 0;

  virtual NodeId address() const = 0;
};

/// Network layer (the routing protocols implement this).
class NetworkLayer {
 public:
  virtual ~NetworkLayer() = default;

  /// Sends a packet toward a final destination (routing may buffer it
  /// during route discovery or drop it when no route can be found).
  virtual void send(Packet packet, NodeId destination) = 0;

  /// Upcall for packets addressed to this node: (packet, origin).
  using DeliverCallback = std::function<void(Packet, NodeId source)>;
  virtual void set_deliver_callback(DeliverCallback cb) = 0;

  virtual NodeId address() const = 0;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_LAYERS_H
