// Packet with a typed header stack (ns-3 style).
//
// Layers push their headers onto a packet on the way down and pop them on
// the way up. Copying a packet deep-copies the headers (broadcast delivers
// an independent copy to every receiver) but keeps the uid, so a frame can
// be correlated across hops in logs and metrics.
#ifndef CAVENET_NETSIM_PACKET_H
#define CAVENET_NETSIM_PACKET_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cavenet::netsim {

/// Base class for all protocol headers.
class Header {
 public:
  virtual ~Header() = default;
  virtual std::unique_ptr<Header> clone() const = 0;
  /// Wire size contributed by this header.
  virtual std::size_t size_bytes() const = 0;
  /// Short name for logs, e.g. "aodv-rreq". Implementations return
  /// string literals, so views stay valid for the process lifetime and
  /// per-event logging never allocates.
  virtual std::string_view name() const = 0;
};

/// CRTP helper providing clone() for copyable header types.
template <typename T>
class HeaderBase : public Header {
 public:
  std::unique_ptr<Header> clone() const override {
    return std::make_unique<T>(static_cast<const T&>(*this));
  }
};

class Packet {
 public:
  /// A packet carrying `payload_bytes` of application payload.
  explicit Packet(std::size_t payload_bytes = 0);

  Packet(const Packet& other);
  Packet& operator=(const Packet& other);
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  /// Unique id assigned at construction; preserved by copies.
  std::uint64_t uid() const noexcept { return uid_; }

  /// Total wire size: payload plus all headers.
  std::size_t size_bytes() const noexcept;
  std::size_t payload_bytes() const noexcept { return payload_bytes_; }

  /// Pushes a header on top of the stack.
  template <typename T>
  void push(T header) {
    headers_.push_back(std::make_unique<T>(std::move(header)));
  }

  /// Pops the top header, which must be a T (throws std::logic_error
  /// otherwise — a layering violation, not a runtime condition).
  template <typename T>
  T pop() {
    T* top = peek<T>();
    if (top == nullptr) {
      throw std::logic_error(
          "packet: top header is not " +
          (headers_.empty() ? std::string("<empty>")
                            : std::string(headers_.back()->name())));
    }
    T out = std::move(*top);
    headers_.pop_back();
    return out;
  }

  /// Top header as T, or nullptr if absent or of another type.
  template <typename T>
  T* peek() noexcept {
    if (headers_.empty()) return nullptr;
    return dynamic_cast<T*>(headers_.back().get());
  }
  template <typename T>
  const T* peek() const noexcept {
    if (headers_.empty()) return nullptr;
    return dynamic_cast<const T*>(headers_.back().get());
  }

  /// Searches the whole stack for a header of type T (topmost match).
  template <typename T>
  const T* find() const noexcept {
    for (auto it = headers_.rbegin(); it != headers_.rend(); ++it) {
      if (const auto* h = dynamic_cast<const T*>(it->get())) return h;
    }
    return nullptr;
  }

  std::size_t header_count() const noexcept { return headers_.size(); }

  /// Name of the topmost header, or "raw" for a bare payload.
  std::string_view top_name() const {
    return headers_.empty() ? std::string_view("raw")
                            : headers_.back()->name();
  }

 private:
  static std::uint64_t next_uid() noexcept;

  std::uint64_t uid_;
  std::size_t payload_bytes_;
  std::vector<std::unique_ptr<Header>> headers_;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_PACKET_H
