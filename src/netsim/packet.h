// Packet with a typed, copy-on-write header stack (ns-3 style).
//
// Layers push their headers onto a packet on the way down and pop them on
// the way up. Copying a packet is O(1): copies share one immutable header
// stack through an intrusive refcount, so broadcast delivery hands every
// receiver a 24-byte view instead of deep-cloning the stack per receiver.
// The copies stay logically independent — popping from a shared stack
// copies the header out and shrinks only that packet's view, and any
// mutation (push, mutable peek) detaches onto a private clone first
// (docs/SCALING.md "Allocation"). Each header type gets an interned
// integer type id, so peek/find/pop match on an integer compare instead
// of dynamic_cast — headers are matched by their exact pushed type.
//
// Packets (and their shared stacks) are confined to one simulator thread,
// like the rest of the kernel: the refcount is deliberately non-atomic.
// The uid is preserved by copies so a frame can be correlated across hops
// in logs and metrics.
#ifndef CAVENET_NETSIM_PACKET_H
#define CAVENET_NETSIM_PACKET_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cavenet::obs {
class StatsRegistry;
}  // namespace cavenet::obs

namespace cavenet::netsim {

/// Base class for all protocol headers.
class Header {
 public:
  virtual ~Header() = default;
  virtual std::unique_ptr<Header> clone() const = 0;
  /// Wire size contributed by this header.
  virtual std::size_t size_bytes() const = 0;
  /// Short name for logs, e.g. "aodv-rreq". Implementations return
  /// string literals, so views stay valid for the process lifetime and
  /// per-event logging never allocates.
  virtual std::string_view name() const = 0;
};

/// CRTP helper providing clone() for copyable header types.
template <typename T>
class HeaderBase : public Header {
 public:
  std::unique_ptr<Header> clone() const override {
    return std::make_unique<T>(static_cast<const T&>(*this));
  }
};

namespace detail {

std::uint32_t next_header_type_id() noexcept;

/// Interned id of header type T; assigned once per type on first use,
/// process-wide. Integer compare + static_cast replaces dynamic_cast on
/// every peek/find/pop.
template <typename T>
std::uint32_t header_type_id() noexcept {
  static const std::uint32_t id = next_header_type_id();
  return id;
}

struct HeaderSlot {
  std::uint32_t type_id;
  std::unique_ptr<Header> header;
};

/// Refcounted header storage shared between packet copies. `refs` counts
/// owning Packet objects (non-atomic: packets never cross threads).
struct HeaderStack {
  std::uint32_t refs = 1;
  std::vector<HeaderSlot> slots;
};

}  // namespace detail

class Packet {
 public:
  /// A packet carrying `payload_bytes` of application payload.
  explicit Packet(std::size_t payload_bytes = 0);

  Packet(const Packet& other) noexcept
      : uid_(other.uid_),
        stack_(other.stack_),
        payload_bytes_(other.payload_bytes_),
        top_(other.top_) {
    if (stack_ != nullptr) ++stack_->refs;
  }
  Packet& operator=(const Packet& other) noexcept {
    // Capture before release(): on self-assignment release() nulls
    // other.stack_ through the alias.
    detail::HeaderStack* stack = other.stack_;
    if (stack != nullptr) ++stack->refs;
    release();
    uid_ = other.uid_;
    stack_ = stack;
    payload_bytes_ = other.payload_bytes_;
    top_ = other.top_;
    return *this;
  }
  Packet(Packet&& other) noexcept
      : uid_(other.uid_),
        stack_(std::exchange(other.stack_, nullptr)),
        payload_bytes_(other.payload_bytes_),
        top_(std::exchange(other.top_, 0)) {}
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      release();
      uid_ = other.uid_;
      stack_ = std::exchange(other.stack_, nullptr);
      payload_bytes_ = other.payload_bytes_;
      top_ = std::exchange(other.top_, 0);
    }
    return *this;
  }
  ~Packet() { release(); }

  /// Unique id assigned at construction; preserved by copies.
  std::uint64_t uid() const noexcept { return uid_; }

  /// Total wire size: payload plus all headers.
  std::size_t size_bytes() const noexcept;
  std::size_t payload_bytes() const noexcept { return payload_bytes_; }

  /// Pushes a header on top of the stack (detaches a shared stack).
  template <typename T>
  void push(T header) {
    detail::HeaderStack& s = writable_stack();
    s.slots.push_back(detail::HeaderSlot{
        detail::header_type_id<T>(),
        std::make_unique<T>(std::move(header))});
    ++top_;
  }

  /// Pops the top header, which must be a T (throws std::logic_error
  /// otherwise — a layering violation, not a runtime condition). On a
  /// shared stack this copies the header out and shrinks only this
  /// packet's view; the storage itself is untouched.
  template <typename T>
  T pop() {
    const detail::HeaderSlot* slot = top_slot();
    if (slot == nullptr || slot->type_id != detail::header_type_id<T>()) {
      throw std::logic_error(
          "packet: top header is not " +
          (slot == nullptr ? std::string("<empty>")
                           : std::string(slot->header->name())));
    }
    if (stack_->refs == 1) {
      // Sole owner: drop any suffix hidden by earlier view-pops, then
      // pop destructively.
      stack_->slots.resize(top_);
      T out = std::move(static_cast<T&>(*stack_->slots.back().header));
      stack_->slots.pop_back();
      --top_;
      return out;
    }
    T out = static_cast<const T&>(*slot->header);
    --top_;
    return out;
  }

  /// Top header as T, or nullptr if absent or of another type. The
  /// mutable overload hands out a writable pointer, so it detaches a
  /// shared stack first — use the const overload (std::as_const) on
  /// read-only paths to keep broadcast copies shared.
  template <typename T>
  T* peek() {
    const detail::HeaderSlot* slot = top_slot();
    if (slot == nullptr || slot->type_id != detail::header_type_id<T>()) {
      return nullptr;
    }
    detail::HeaderStack& s = writable_stack();
    return static_cast<T*>(s.slots.back().header.get());
  }
  template <typename T>
  const T* peek() const noexcept {
    const detail::HeaderSlot* slot = top_slot();
    if (slot == nullptr || slot->type_id != detail::header_type_id<T>()) {
      return nullptr;
    }
    return static_cast<const T*>(slot->header.get());
  }

  /// Searches the whole stack for a header of type T (topmost match).
  template <typename T>
  const T* find() const noexcept {
    if (stack_ == nullptr) return nullptr;
    const std::uint32_t id = detail::header_type_id<T>();
    for (std::uint32_t i = top_; i > 0; --i) {
      const detail::HeaderSlot& slot = stack_->slots[i - 1];
      if (slot.type_id == id) {
        return static_cast<const T*>(slot.header.get());
      }
    }
    return nullptr;
  }

  std::size_t header_count() const noexcept { return top_; }

  /// Name of the topmost header, or "raw" for a bare payload.
  std::string_view top_name() const {
    const detail::HeaderSlot* slot = top_slot();
    return slot == nullptr ? std::string_view("raw") : slot->header->name();
  }

  /// Copy-on-write detaches performed by this thread since it started
  /// (perf tests / diagnostics; every detach clones the visible stack).
  static std::uint64_t cow_detach_count() noexcept;
  /// Binds this thread's detach count to a "pkt.cow_detach" counter in
  /// `registry`. Opt-in: the scenario runners do not bind it, keeping
  /// their manifests stable.
  static void bind_cow_stats(obs::StatsRegistry& registry);

 private:
  const detail::HeaderSlot* top_slot() const noexcept {
    return (stack_ == nullptr || top_ == 0) ? nullptr
                                            : &stack_->slots[top_ - 1];
  }
  /// Storage safe to mutate: creates it on first push, trims the hidden
  /// suffix when uniquely owned, clones the visible prefix (the actual
  /// copy-on-write) when shared.
  detail::HeaderStack& writable_stack();
  void release() noexcept {
    if (stack_ != nullptr && --stack_->refs == 0) delete stack_;
    stack_ = nullptr;
  }
  static std::uint64_t next_uid() noexcept;

  std::uint64_t uid_;
  detail::HeaderStack* stack_ = nullptr;
  std::uint32_t payload_bytes_;
  std::uint32_t top_ = 0;
};

// The per-receiver broadcast capture [receiver, packet, power, duration]
// must fit the scheduler's 48-byte inline action buffer; a bigger Packet
// would silently push every delivery onto the heap.
static_assert(sizeof(Packet) == 24, "Packet is a 24-byte shared view");

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_PACKET_H
