// The kernel's one parallelism knob (docs/SCALING.md "Threading").
//
// ParallelConfig collapses what used to be three separate switches —
// TableIConfig.shards, TableIConfig.shard_epoch_s and
// Simulator::enable_sharding(K) — into a single value accepted by
// Simulator::enable_parallel, TableIConfig::parallel and the spec's
// `engine.parallel` block. Every combination is a pure performance
// setting: results are byte-identical at any (shards, threads) pair,
// which the shard-equivalence suite and the PR 4 golden fixture enforce.
#ifndef CAVENET_NETSIM_PARALLEL_H
#define CAVENET_NETSIM_PARALLEL_H

#include <stdexcept>

namespace cavenet::netsim {

struct ParallelConfig {
  /// Spatial shards for the single-run kernel: the world is partitioned
  /// into up to this many strips, each with its own slab-pooled
  /// scheduler and channel snapshot (docs/SCALING.md "Sharding").
  int shards = 1;
  /// Executor lanes the kernel may use for epoch-batched precompute
  /// (position snapshots, shard rebuckets, receive-power evaluation);
  /// <= 0 resolves to the hardware thread count. Event dispatch commits
  /// strictly in (time, seq) order regardless, so the thread count never
  /// changes a single byte of output — only the wall clock.
  int threads = 1;
  /// Epoch period in simulation seconds: shard membership rebuckets and
  /// the dispatcher's parallel barrier tasks run on this cadence.
  double epoch_s = 1.0;

  bool enabled() const noexcept { return shards > 1 || threads != 1; }

  /// Throws std::invalid_argument on out-of-range values; returns *this
  /// so call sites can validate inline.
  const ParallelConfig& validate() const {
    if (shards < 1) {
      throw std::invalid_argument("parallel: shards must be >= 1");
    }
    if (!(epoch_s > 0.0)) {
      throw std::invalid_argument("parallel: epoch_s must be > 0");
    }
    return *this;
  }
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_PARALLEL_H
