#include "netsim/packet.h"

#include <atomic>

namespace cavenet::netsim {

std::uint64_t Packet::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Packet::Packet(std::size_t payload_bytes)
    : uid_(next_uid()), payload_bytes_(payload_bytes) {}

Packet::Packet(const Packet& other)
    : uid_(other.uid_), payload_bytes_(other.payload_bytes_) {
  headers_.reserve(other.headers_.size());
  for (const auto& h : other.headers_) headers_.push_back(h->clone());
}

Packet& Packet::operator=(const Packet& other) {
  if (this == &other) return *this;
  uid_ = other.uid_;
  payload_bytes_ = other.payload_bytes_;
  headers_.clear();
  headers_.reserve(other.headers_.size());
  for (const auto& h : other.headers_) headers_.push_back(h->clone());
  return *this;
}

std::size_t Packet::size_bytes() const noexcept {
  std::size_t total = payload_bytes_;
  for (const auto& h : headers_) total += h->size_bytes();
  return total;
}

}  // namespace cavenet::netsim
