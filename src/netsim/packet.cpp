#include "netsim/packet.h"

#include <atomic>

#include "obs/stats_registry.h"

namespace cavenet::netsim {
namespace {

thread_local std::uint64_t cow_detaches = 0;
thread_local obs::Counter cow_detach_counter;

}  // namespace

std::uint32_t detail::next_header_type_id() noexcept {
  // Ids only need to be distinct, not stable across runs: they never
  // appear in any output, so assignment order cannot affect determinism.
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Packet::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Packet::Packet(std::size_t payload_bytes)
    : uid_(next_uid()),
      payload_bytes_(static_cast<std::uint32_t>(payload_bytes)) {}

std::size_t Packet::size_bytes() const noexcept {
  std::size_t total = payload_bytes_;
  for (std::uint32_t i = 0; i < top_; ++i) {
    total += stack_->slots[i].header->size_bytes();
  }
  return total;
}

detail::HeaderStack& Packet::writable_stack() {
  if (stack_ == nullptr) {
    stack_ = new detail::HeaderStack();
    return *stack_;
  }
  if (stack_->refs == 1) {
    // Uniquely owned: re-establish top_ == slots.size() by dropping any
    // slots hidden by earlier view-pops, then mutate in place.
    if (top_ < stack_->slots.size()) stack_->slots.resize(top_);
    return *stack_;
  }
  // Shared: detach onto a private clone of the visible prefix.
  auto* fresh = new detail::HeaderStack();
  fresh->slots.reserve(top_);
  for (std::uint32_t i = 0; i < top_; ++i) {
    const detail::HeaderSlot& slot = stack_->slots[i];
    fresh->slots.push_back(
        detail::HeaderSlot{slot.type_id, slot.header->clone()});
  }
  --stack_->refs;
  stack_ = fresh;
  ++cow_detaches;
  cow_detach_counter.inc();
  return *stack_;
}

std::uint64_t Packet::cow_detach_count() noexcept { return cow_detaches; }

void Packet::bind_cow_stats(obs::StatsRegistry& registry) {
  cow_detach_counter = registry.counter("pkt.cow_detach");
}

}  // namespace cavenet::netsim
