#include "netsim/packet_log.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/intern.h"

namespace cavenet::netsim {

void PacketLog::record(SimTime time, Event event, Layer layer, NodeId node,
                       std::uint64_t uid, std::string_view type,
                       std::size_t bytes) {
  const std::string_view interned = obs::intern(type);
  if (trace_sink_ != nullptr) {
    obs::TraceEvent e;
    e.ts = time;
    e.phase = obs::TraceEvent::Phase::kInstant;
    e.name = interned;
    e.category = layer_name(layer);
    e.tid = node;
    trace_sink_->emit(e);
  }
  if (entries_.size() >= max_entries_) {
    ++dropped_;
    return;
  }
  if (entries_.capacity() == entries_.size()) {
    // Geometric growth with a sensible floor, never past the cap; the
    // vector's own doubling would also be geometric but starts tiny.
    entries_.reserve(std::min(
        max_entries_, std::max<std::size_t>(1024, entries_.capacity() * 2)));
  }
  entries_.push_back({time, event, layer, node, uid, interned, bytes});
}

std::size_t PacketLog::count(Event event, Layer layer) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.event == event && e.layer == layer) ++n;
  }
  return n;
}

char PacketLog::event_code(Event event) noexcept {
  switch (event) {
    case Event::kSend: return 's';
    case Event::kReceive: return 'r';
    case Event::kForward: return 'f';
    case Event::kDrop: return 'D';
  }
  return '?';
}

const char* PacketLog::layer_name(Layer layer) noexcept {
  switch (layer) {
    case Layer::kAgent: return "AGT";
    case Layer::kRouter: return "RTR";
    case Layer::kMac: return "MAC";
  }
  return "?";
}

void PacketLog::write_ns2(std::ostream& out) const {
  char buf[160];
  for (const Entry& e : entries_) {
    std::snprintf(buf, sizeof buf, "%c %.9f _%u_ %s --- %llu %.*s %zu\n",
                  event_code(e.event), e.time.sec(), e.node,
                  layer_name(e.layer),
                  static_cast<unsigned long long>(e.uid),
                  static_cast<int>(e.type.size()), e.type.data(), e.bytes);
    out << buf;
  }
}

}  // namespace cavenet::netsim
