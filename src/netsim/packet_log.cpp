#include "netsim/packet_log.h"

#include <cstdio>
#include <ostream>

namespace cavenet::netsim {

void PacketLog::record(SimTime time, Event event, Layer layer, NodeId node,
                       std::uint64_t uid, std::string type,
                       std::size_t bytes) {
  entries_.push_back({time, event, layer, node, uid, std::move(type), bytes});
}

std::size_t PacketLog::count(Event event, Layer layer) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.event == event && e.layer == layer) ++n;
  }
  return n;
}

char PacketLog::event_code(Event event) noexcept {
  switch (event) {
    case Event::kSend: return 's';
    case Event::kReceive: return 'r';
    case Event::kForward: return 'f';
    case Event::kDrop: return 'D';
  }
  return '?';
}

const char* PacketLog::layer_name(Layer layer) noexcept {
  switch (layer) {
    case Layer::kAgent: return "AGT";
    case Layer::kRouter: return "RTR";
    case Layer::kMac: return "MAC";
  }
  return "?";
}

void PacketLog::write_ns2(std::ostream& out) const {
  char buf[160];
  for (const Entry& e : entries_) {
    std::snprintf(buf, sizeof buf, "%c %.9f _%u_ %s --- %llu %s %zu\n",
                  event_code(e.event), e.time.sec(), e.node,
                  layer_name(e.layer),
                  static_cast<unsigned long long>(e.uid), e.type.c_str(),
                  e.bytes);
    out << buf;
  }
}

}  // namespace cavenet::netsim
