// The simulation kernel: clock + scheduler + seeded RNG streams.
//
// Observability hooks (all optional, near-zero cost when unused):
//  - set_profiler(): wall-clock time per event handler, attributed to the
//    component label passed at schedule() time.
//  - set_trace_sink(): heartbeat counter tracks (events/sec, queue depth,
//    sim-time speedup) in Chrome trace_event form.
//  - enable_heartbeat(): periodic progress lines for long runs.
#ifndef CAVENET_NETSIM_SIMULATOR_H
#define CAVENET_NETSIM_SIMULATOR_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "netsim/parallel.h"
#include "netsim/scheduler.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cavenet::obs {
class KernelProfiler;
class StatsRegistry;
class TraceSink;
}  // namespace cavenet::obs

namespace cavenet::netsim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `action` after `delay` (>= 0) from now. The labeled
  /// overloads attribute the handler to `component` in kernel profiles;
  /// the label must point at static storage (pass a string literal).
  /// Templated so the callable lands directly in the scheduler pool's
  /// inline buffer — no std::function box on the way in.
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule(SimTime delay, F&& action) {
    return schedule(delay, {}, std::forward<F>(action));
  }
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule(SimTime delay, std::string_view component, F&& action) {
    if (delay < SimTime::zero()) {
      throw std::invalid_argument("negative delay: " + delay.to_string());
    }
    return shard(current_shard_)
        .schedule_at(now_ + delay, std::forward<F>(action), component);
  }
  /// Schedules at an absolute time (>= now).
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule_at(SimTime at, F&& action) {
    return schedule_at(at, {}, std::forward<F>(action));
  }
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule_at(SimTime at, std::string_view component, F&& action) {
    if (at < now_) {
      throw std::invalid_argument("scheduling into the past: " +
                                  at.to_string());
    }
    return shard(current_shard_)
        .schedule_at(at, std::forward<F>(action), component);
  }

  /// Schedules onto an explicit shard's queue instead of the current
  /// event's (events normally inherit the shard they were scheduled
  /// from). Cross-shard deliveries — the channel handing a packet to a
  /// receiver that lives in another region — go through here, making them
  /// time-stamped inter-shard messages. With sharding disabled the only
  /// valid shard is 0 and this is exactly schedule().
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule_on(std::uint32_t shard_index, SimTime delay,
                      std::string_view component, F&& action) {
    if (delay < SimTime::zero()) {
      throw std::invalid_argument("negative delay: " + delay.to_string());
    }
    if (shard_index >= shard_count()) {
      throw std::out_of_range("schedule_on: shard out of range");
    }
    return shard(shard_index)
        .schedule_at(now_ + delay, std::forward<F>(action), component);
  }

  /// Installs the kernel's parallelism plan (see ParallelConfig). With
  /// shards > 1 the event queue splits into independent slab-pooled
  /// Schedulers merged by one dispatcher on the global (time, seq) key;
  /// sequence numbers come from one shared counter, so the merged
  /// dispatch order is bit-identical to the single-queue kernel at any
  /// shard count — sharding partitions *state* (queues, slabs, and the
  /// channel's spatial snapshot), never the event order. With
  /// threads > 1 a persistent ThreadPoolExecutor becomes available via
  /// executor(); the dispatcher advances in conservative epochs
  /// (epoch_s) and hands registered epoch tasks the barrier time so
  /// shard precompute (position snapshots, rebuckets, receive-power
  /// passes) runs on every lane while event dispatch itself commits
  /// strictly in (time, seq) order — threads therefore never change a
  /// byte of output. Callers enabling threads > 1 must guarantee the
  /// work they hand the executor is thread-safe (mobility position
  /// lookups in particular). Must be called before any event is
  /// scheduled; {1, 1, *} is a no-op.
  void enable_parallel(const ParallelConfig& config);

  /// Legacy alias for enable_parallel({.shards = K}): splits the queue
  /// only, keeps dispatch single-threaded. Must be called before any
  /// event is scheduled; shards == 1 is a no-op.
  void enable_sharding(std::uint32_t shards);

  /// The execution pool enable_parallel provisioned (an inline,
  /// calling-thread executor until threads > 1 is enabled or an
  /// external pool injected via set_executor).
  exec::Executor& executor() noexcept { return *executor_; }
  /// Executor lanes available to the kernel (1 = serial).
  int threads() const noexcept { return executor_->workers(); }

  /// Injects a shared execution pool (nullptr restores the inline
  /// executor). The pool must outlive the simulator; call before
  /// enable_parallel so it wins over the kernel-owned pool.
  void set_executor(exec::Executor* executor) noexcept {
    executor_ = executor != nullptr ? executor : &inline_executor_;
  }

  /// Registers a task the dispatcher runs at every epoch barrier (the
  /// epoch_s cadence from enable_parallel), receiving the barrier's
  /// simulation time. Tasks run before the first event at or past the
  /// barrier dispatches and must not schedule events or mutate
  /// dispatch-visible state — they exist for referentially transparent
  /// precompute (the channel's parallel shard rebucket).
  void register_epoch_task(std::function<void(SimTime)> task) {
    epoch_tasks_.push_back(std::move(task));
  }
  /// Epoch barriers crossed so far (the shard.epoch_barriers counter).
  std::uint64_t epoch_barriers() const noexcept { return epoch_barriers_; }

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(extra_shards_.size()) + 1;
  }
  /// Shard of the event being dispatched (0 when idle or unsharded).
  std::uint32_t current_shard() const noexcept { return current_shard_; }

  /// Runs until the event queue drains or stop() is called.
  void run();
  /// Runs events with time <= until, then sets the clock to `until`.
  void run_until(SimTime until);
  /// Makes run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  std::uint64_t seed() const noexcept { return seed_; }
  /// Derives an independent RNG stream for a component. The same
  /// (seed, stream) pair always yields the same stream.
  Rng make_rng(std::uint64_t stream) const { return Rng(seed_, stream); }

  std::uint64_t events_dispatched() const noexcept {
    std::uint64_t total = scheduler_.dispatched_count();
    for (const auto& s : extra_shards_) total += s->dispatched_count();
    return total;
  }
  /// Pending events (including cancelled ones not yet dropped).
  std::size_t queue_depth() const noexcept {
    std::size_t total = scheduler_.size();
    for (const auto& s : extra_shards_) total += s->size();
    return total;
  }

  /// Attaches (nullptr detaches) a kernel profiler; see Scheduler.
  void set_profiler(obs::KernelProfiler* profiler) noexcept {
    profiler_ = profiler;
    scheduler_.set_profiler(profiler);
    for (auto& s : extra_shards_) s->set_profiler(profiler);
  }

  /// Binds the scheduler pool's sched.pool.* counters; see Scheduler.
  /// All shards bind the same counter names, so the published values are
  /// pool totals.
  void bind_kernel_stats(obs::StatsRegistry& registry) {
    scheduler_.bind_stats(registry);
    for (auto& s : extra_shards_) s->bind_stats(registry);
  }

  /// Binds the "shard.epoch_barriers" counter (live from here on;
  /// barriers crossed before binding are re-published). Opt-in and
  /// separate from bind_kernel_stats for the same reason as the
  /// channel's bind_shard_stats: the scenario runners do not bind it,
  /// so stats snapshots stay byte-identical across parallel settings.
  void bind_parallel_stats(obs::StatsRegistry& registry);

  /// Publishes the kernel-owned thread pool's lifetime activity into a
  /// registry: "exec.batches" / "exec.tasks" / "exec.chunks" counters
  /// plus one "exec.worker<i>.wall_ms" gauge per lane (volatile — the
  /// manifest's strip_volatile drops the gauges). No-op without a
  /// kernel-owned pool.
  void publish_exec_stats(obs::StatsRegistry& registry) const;

  /// Attaches (nullptr detaches) a sink for kernel-emitted trace events
  /// (currently the heartbeat counter tracks).
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_sink_ = sink; }

  /// Emits a progress heartbeat every `interval` of simulation time: an
  /// INFO log line (sim time, wall time, events/sec, queue depth) plus
  /// counter events into the trace sink when one is attached. Heartbeats
  /// stop by themselves when the rest of the queue drains.
  void enable_heartbeat(SimTime interval);

 private:
  void heartbeat();
  /// Runs every epoch barrier with time <= at (tasks + counter).
  void run_epoch_barriers(SimTime at);
  bool epoch_due(SimTime at) const noexcept {
    return !epoch_tasks_.empty() && epoch_interval_ > SimTime::zero() &&
           at >= next_epoch_;
  }

  Scheduler& shard(std::uint32_t index) noexcept {
    return index == 0 ? scheduler_ : *extra_shards_[index - 1];
  }
  /// Index of the shard holding the globally earliest (time, seq) key;
  /// shard_count() when every queue is empty.
  std::uint32_t pick_next_shard(SimTime& at) const noexcept;

  Scheduler scheduler_;
  /// Shards 1..k-1 (shard 0 is scheduler_). unique_ptr because Scheduler
  /// is pinned (slab chunks + self-referential seq pointer).
  std::vector<std::unique_ptr<Scheduler>> extra_shards_;
  /// Shared insertion-sequence counter once sharding is enabled.
  std::uint64_t shared_seq_ = 0;
  std::uint32_t current_shard_ = 0;
  obs::KernelProfiler* profiler_ = nullptr;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t seed_;

  // --- parallelism (enable_parallel) ---
  bool parallel_enabled_ = false;
  exec::InlineExecutor inline_executor_;
  std::unique_ptr<exec::ThreadPoolExecutor> pool_;
  exec::Executor* executor_ = &inline_executor_;
  SimTime epoch_interval_ = SimTime::zero();
  SimTime next_epoch_ = SimTime::zero();
  std::vector<std::function<void(SimTime)>> epoch_tasks_;
  std::uint64_t epoch_barriers_ = 0;
  obs::Counter obs_epoch_barriers_;  ///< shard.epoch_barriers

  obs::TraceSink* trace_sink_ = nullptr;
  SimTime heartbeat_interval_ = SimTime::zero();
  std::chrono::steady_clock::time_point heartbeat_wall_start_{};
  std::chrono::steady_clock::time_point last_heartbeat_wall_{};
  SimTime last_heartbeat_sim_ = SimTime::zero();
  std::uint64_t last_heartbeat_events_ = 0;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_SIMULATOR_H
