// The simulation kernel: clock + scheduler + seeded RNG streams.
#ifndef CAVENET_NETSIM_SIMULATOR_H
#define CAVENET_NETSIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <string_view>

#include "netsim/scheduler.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cavenet::netsim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `action` after `delay` (>= 0) from now.
  EventId schedule(SimTime delay, std::function<void()> action);
  /// Schedules at an absolute time (>= now).
  EventId schedule_at(SimTime at, std::function<void()> action);

  /// Runs until the event queue drains or stop() is called.
  void run();
  /// Runs events with time <= until, then sets the clock to `until`.
  void run_until(SimTime until);
  /// Makes run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  std::uint64_t seed() const noexcept { return seed_; }
  /// Derives an independent RNG stream for a component. The same
  /// (seed, stream) pair always yields the same stream.
  Rng make_rng(std::uint64_t stream) const { return Rng(seed_, stream); }

  std::uint64_t events_dispatched() const noexcept {
    return scheduler_.dispatched_count();
  }

 private:
  Scheduler scheduler_;
  SimTime now_ = SimTime::zero();
  bool stopped_ = false;
  std::uint64_t seed_;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_SIMULATOR_H
