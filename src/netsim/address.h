// Node addressing. The simulator uses flat 32-bit node ids as both MAC and
// network addresses (the paper's ns-2 setup likewise identifies nodes by
// index).
#ifndef CAVENET_NETSIM_ADDRESS_H
#define CAVENET_NETSIM_ADDRESS_H

#include <cstdint>

namespace cavenet::netsim {

using NodeId = std::uint32_t;

/// Link-local / network broadcast address.
inline constexpr NodeId kBroadcast = 0xFFFFFFFFu;

inline constexpr bool is_broadcast(NodeId id) noexcept {
  return id == kBroadcast;
}

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_ADDRESS_H
