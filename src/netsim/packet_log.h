// ns-2-style packet event logging.
//
// ns-2 writes one line per packet event ("s 10.0 _4_ AGT --- 17 cbr 512");
// researchers post-process these traces for every metric the simulator
// does not compute natively. PacketLog is the equivalent: layers record
// send/receive/forward/drop events into it, and it serializes in a
// compatible textual form (plus structured access for tests and tools).
#ifndef CAVENET_NETSIM_PACKET_LOG_H
#define CAVENET_NETSIM_PACKET_LOG_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netsim/address.h"
#include "util/sim_time.h"

namespace cavenet::netsim {

class PacketLog {
 public:
  enum class Event : std::uint8_t { kSend, kReceive, kForward, kDrop };
  enum class Layer : std::uint8_t { kAgent, kRouter, kMac };

  struct Entry {
    SimTime time;
    Event event;
    Layer layer;
    NodeId node;
    std::uint64_t uid;
    std::string type;  ///< e.g. "cbr", "aodv-rreq", "80211-ack"
    std::size_t bytes;
  };

  void record(SimTime time, Event event, Layer layer, NodeId node,
              std::uint64_t uid, std::string type, std::size_t bytes);

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Number of entries matching an (event, layer) pair.
  std::size_t count(Event event, Layer layer) const;

  /// ns-2 trace syntax: "<s|r|f|D> <time> _<node>_ <AGT|RTR|MAC> --- <uid>
  /// <type> <bytes>".
  void write_ns2(std::ostream& out) const;

  static char event_code(Event event) noexcept;
  static const char* layer_name(Layer layer) noexcept;

 private:
  std::vector<Entry> entries_;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_PACKET_LOG_H
