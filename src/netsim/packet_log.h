// ns-2-style packet event logging.
//
// ns-2 writes one line per packet event ("s 10.0 _4_ AGT --- 17 cbr 512");
// researchers post-process these traces for every metric the simulator
// does not compute natively. PacketLog is the equivalent: layers record
// send/receive/forward/drop events into it, and it serializes in a
// compatible textual form (plus structured access for tests and tools).
//
// Memory behaviour: entries grow geometrically and are capped at
// max_entries() — records beyond the cap are counted in dropped() and
// discarded, so a multi-hour run degrades into a truncated log instead of
// silently exhausting memory. Entry type names are interned
// (obs::intern), so recording costs no per-event heap allocation.
//
// With a TraceSink attached, every record is mirrored as a structured
// instant event (Chrome trace_event), which is how packet activity lands
// in Perfetto timelines.
#ifndef CAVENET_NETSIM_PACKET_LOG_H
#define CAVENET_NETSIM_PACKET_LOG_H

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "netsim/address.h"
#include "obs/trace_sink.h"
#include "util/sim_time.h"

namespace cavenet::netsim {

class PacketLog {
 public:
  enum class Event : std::uint8_t { kSend, kReceive, kForward, kDrop };
  enum class Layer : std::uint8_t { kAgent, kRouter, kMac };

  /// Default cap: ~1M entries (~48 MB). Override with set_max_entries().
  static constexpr std::size_t kDefaultMaxEntries = 1u << 20;

  struct Entry {
    SimTime time;
    Event event;
    Layer layer;
    NodeId node;
    std::uint64_t uid;
    std::string_view type;  ///< interned; e.g. "cbr", "aodv-rreq"
    std::size_t bytes;
  };

  void record(SimTime time, Event event, Layer layer, NodeId node,
              std::uint64_t uid, std::string_view type, std::size_t bytes);

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Entry-count cap; records past it are dropped (and counted).
  std::size_t max_entries() const noexcept { return max_entries_; }
  void set_max_entries(std::size_t cap) noexcept { max_entries_ = cap; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Mirrors every record into `sink` as an instant trace event
  /// (category = layer name, tid = node). nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_sink_ = sink; }

  /// Number of entries matching an (event, layer) pair.
  std::size_t count(Event event, Layer layer) const;

  /// ns-2 trace syntax: "<s|r|f|D> <time> _<node>_ <AGT|RTR|MAC> --- <uid>
  /// <type> <bytes>".
  void write_ns2(std::ostream& out) const;

  static char event_code(Event event) noexcept;
  static const char* layer_name(Layer layer) noexcept;

 private:
  std::vector<Entry> entries_;
  std::size_t max_entries_ = kDefaultMaxEntries;
  std::uint64_t dropped_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_PACKET_LOG_H
