// Discrete-event scheduler.
//
// A binary heap keyed by (time, insertion sequence) — the sequence number
// makes simultaneous events fire in scheduling order, so runs are fully
// deterministic. Events can be cancelled in O(1) (lazy deletion).
#ifndef CAVENET_NETSIM_SCHEDULER_H
#define CAVENET_NETSIM_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace cavenet::netsim {

namespace detail {
struct EventRecord {
  SimTime at;
  std::uint64_t seq = 0;
  std::function<void()> action;
  bool cancelled = false;
};
}  // namespace detail

/// Handle to a scheduled event; default-constructed handles are inert.
class EventId {
 public:
  EventId() = default;

  /// Prevents the event from firing. Idempotent; safe after expiry.
  void cancel() noexcept {
    if (auto rec = record_.lock()) rec->cancelled = true;
  }
  /// True if the event is still queued and will fire.
  bool pending() const noexcept {
    const auto rec = record_.lock();
    return rec && !rec->cancelled;
  }

 private:
  friend class Scheduler;
  explicit EventId(std::weak_ptr<detail::EventRecord> rec)
      : record_(std::move(rec)) {}
  std::weak_ptr<detail::EventRecord> record_;
};

class Scheduler {
 public:
  /// Enqueues `action` at absolute time `at`. `at` must not precede the
  /// time of the last dequeued event (no scheduling into the past).
  EventId schedule_at(SimTime at, std::function<void()> action);

  bool empty() const noexcept;
  /// Time of the earliest pending event; SimTime::max() when empty.
  SimTime next_time() const noexcept;

  /// Dequeues and runs the earliest event. Returns false if none pending.
  bool run_one();

  /// Time of the most recently dequeued event.
  SimTime last_dispatched() const noexcept { return last_dispatched_; }

  std::uint64_t dispatched_count() const noexcept { return dispatched_; }

 private:
  void drop_cancelled() const;

  struct Compare {
    bool operator()(const std::shared_ptr<detail::EventRecord>& a,
                    const std::shared_ptr<detail::EventRecord>& b) const {
      if (a->at != b->at) return a->at > b->at;  // min-heap
      return a->seq > b->seq;
    }
  };
  mutable std::priority_queue<std::shared_ptr<detail::EventRecord>,
                              std::vector<std::shared_ptr<detail::EventRecord>>,
                              Compare>
      queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  SimTime last_dispatched_ = SimTime::zero();
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_SCHEDULER_H
