// Discrete-event scheduler with a pooled, allocation-free hot path.
//
// A binary heap keyed by (time, insertion sequence) — the sequence number
// makes simultaneous events fire in scheduling order, so runs are fully
// deterministic. Events can be cancelled in O(1).
//
// Storage design (docs/SCALING.md "Allocation"): event records live in a
// slab of fixed 64-byte slots addressed by {slot, generation} handles.
// The action is stored in a 48-byte inline small-buffer (every kernel
// lambda — MAC, PHY, channel delivery, routing, app — fits; oversized
// captures fall back to one heap box). Freed slots recycle through a free
// list and the heap stores plain {time, seq, slot, generation} entries,
// so a steady-state schedule+dispatch cycle performs zero heap
// allocations. Cancelling releases the action (and the packets/pointers
// it captures) eagerly; stale heap entries are skipped by a generation
// compare and compacted away when they outnumber live ones.
#ifndef CAVENET_NETSIM_SCHEDULER_H
#define CAVENET_NETSIM_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/stats_registry.h"
#include "util/sim_time.h"

namespace cavenet::obs {
class KernelProfiler;
}  // namespace cavenet::obs

namespace cavenet::netsim {

namespace detail {

/// Type-erased move-only callable with a fixed inline buffer. Callables
/// that fit (size <= 48, pointer alignment, nothrow-movable) live in the
/// buffer; anything bigger is boxed on the heap. One ops-table pointer
/// keeps the whole object at 56 bytes so an EventRecord stays a 64-byte
/// slab slot.
class InlineAction {
 public:
  static constexpr std::size_t kCapacity = 48;

  InlineAction() noexcept = default;
  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  /// Whether a callable of type Fn will live in the inline buffer.
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kCapacity && alignof(Fn) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &OpsFor<Fn, /*Heap=*/false>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &OpsFor<Fn, /*Heap=*/true>::kOps;
    }
  }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }
  /// True when the callable lives in the inline buffer (perf counters).
  bool inline_stored() const noexcept {
    return ops_ != nullptr && !ops_->heap;
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn, bool Heap>
  struct OpsFor;

  template <typename Fn>
  struct OpsFor<Fn, false> {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy, false};
  };

  template <typename Fn>
  struct OpsFor<Fn, true> {
    static Fn*& box(void* p) noexcept { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*box(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(box(src));
    }
    static void destroy(void* p) noexcept { delete box(p); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy, true};
  };

  alignas(void*) std::byte buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

/// One slab slot. `generation` advances every time the slot is freed, so
/// a {slot, generation} handle (EventId, heap entry) refers to exactly
/// one incarnation of the slot: a recycled slot never resurrects a stale
/// handle. `component_id` indexes the scheduler's interned label table.
struct EventRecord {
  InlineAction action;
  std::uint32_t generation = 0;
  std::uint32_t component_id = 0;
};
static_assert(sizeof(EventRecord) == 64,
              "event records are sized to exactly one 64-byte slab slot");

}  // namespace detail

class Scheduler;

/// Handle to a scheduled event; default-constructed handles are inert.
/// A handle weakly references a {slot, generation} pair in its
/// scheduler's pool — cancel()/pending() on expired, cancelled or
/// recycled slots are cheap no-ops. Handles must not be used after their
/// Scheduler is destroyed.
class EventId {
 public:
  EventId() = default;

  /// Prevents the event from firing and releases its action (and
  /// everything the action captured) immediately. Idempotent; safe after
  /// expiry.
  void cancel() noexcept;
  /// True if the event is still queued and will fire.
  bool pending() const noexcept;

 private:
  friend class Scheduler;
  EventId(Scheduler* scheduler, std::uint32_t slot,
          std::uint32_t generation) noexcept
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `action` at absolute time `at`. `at` must not precede the
  /// time of the last dequeued event (no scheduling into the past).
  /// `component` labels the event for kernel profiling and must point at
  /// static storage (pass a string literal). Steady state (recycled slot,
  /// action fits the inline buffer, heap vector at capacity) allocates
  /// nothing.
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&>
  EventId schedule_at(SimTime at, F&& action,
                      std::string_view component = {}) {
    const std::uint32_t slot = acquire_slot(at);
    detail::EventRecord& rec = record_at(slot);
    rec.action.emplace(std::forward<F>(action));
    if constexpr (detail::InlineAction::fits_inline<std::decay_t<F>>()) {
      obs_action_inline_.inc();
    } else {
      obs_action_heap_.inc();
    }
    rec.component_id =
        component.empty() ? 0 : intern_component(component);
    const std::uint32_t generation = rec.generation;
    push_entry(at, slot, generation);
    return EventId(this, slot, generation);
  }

  bool empty() const noexcept {
    drop_cancelled();
    return heap_.empty();
  }
  /// Time of the earliest pending event; SimTime::max() when empty.
  SimTime next_time() const noexcept {
    drop_cancelled();
    return heap_.empty() ? SimTime::max() : heap_.front().at;
  }

  /// Dequeues and runs the earliest event. Returns false if none pending.
  bool run_one();

  /// Key of the earliest pending event, for merging several schedulers
  /// into one dispatch order (sharded Simulator). Sequence numbers drawn
  /// from a shared counter (share_sequence) make the merged (at, seq)
  /// order total and identical to a single-queue run. Returns false when
  /// the queue is empty.
  bool peek_next(SimTime& at, std::uint64_t& seq) const noexcept {
    drop_cancelled();
    if (heap_.empty()) return false;
    at = heap_.front().at;
    seq = heap_.front().seq;
    return true;
  }

  /// Draws insertion sequence numbers from `seq` instead of the private
  /// counter (nullptr reverts). All schedulers merged by one dispatcher
  /// must share a counter so the global (time, seq) order stays the
  /// single-queue order bit for bit. Switch before any event is queued.
  void share_sequence(std::uint64_t* seq) noexcept {
    seq_src_ = seq != nullptr ? seq : &next_seq_;
  }

  /// Time of the most recently dequeued event.
  SimTime last_dispatched() const noexcept { return last_dispatched_; }

  std::uint64_t dispatched_count() const noexcept { return dispatched_; }

  /// Queued events, including cancelled ones not yet dropped.
  std::size_t size() const noexcept { return heap_.size(); }

  /// Attaches (or detaches, with nullptr) a kernel profiler. While
  /// attached, every dispatch is wall-clock timed and attributed to the
  /// event's component label; detached costs one branch per event.
  void set_profiler(obs::KernelProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Binds the pool's counters into a registry: "sched.pool.slots"
  /// (slab capacity grown), "sched.pool.action.inline" /
  /// "sched.pool.action.heap" (where actions were stored),
  /// "sched.pool.cancelled" and "sched.pool.compactions". Opt-in: the
  /// scenario runners do not bind these, keeping their manifests stable.
  void bind_stats(obs::StatsRegistry& registry);

 private:
  friend class EventId;

  /// Records per slab chunk; chunks pin records in place (handles and
  /// heap entries index them), so the slab grows without relocating.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Below this queue length tombstones are too cheap to chase.
  static constexpr std::size_t kCompactMin = 64;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct EntryAfter {
    /// Min-heap on (at, seq) through std::push_heap's max-heap calls.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  detail::EventRecord& record_at(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const detail::EventRecord& record_at(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  /// Validates `at`, then pops a free slot (growing the slab by one
  /// chunk when the free list is dry).
  std::uint32_t acquire_slot(SimTime at);
  /// Retires a slot: drops any leftover action, advances the
  /// generation (invalidating every outstanding handle/entry) and
  /// returns the slot to the free list.
  void release_slot(std::uint32_t slot) noexcept;
  void push_entry(SimTime at, std::uint32_t slot, std::uint32_t generation);
  void grow_slab();

  void cancel_event(std::uint32_t slot, std::uint32_t generation) noexcept;
  bool event_pending(std::uint32_t slot,
                     std::uint32_t generation) const noexcept;

  /// Pops tombstoned entries (cancelled events) off the heap top. Every
  /// stale entry was counted at cancel time, so a zero count proves the
  /// top is live without touching its record.
  void drop_cancelled() const {
    if (tombstones_ != 0) [[unlikely]] drop_cancelled_slow();
  }
  void drop_cancelled_slow() const;
  /// Rebuilds the heap without tombstones once they are the majority.
  void maybe_compact();
  std::uint32_t intern_component(std::string_view component);
  /// Cold path of run_one: wall-clock the action and feed the profiler.
  /// Outlined (and kept out-of-line) so the unprofiled hot path stays
  /// small — the steady_clock machinery would otherwise bloat run_one.
  void dispatch_profiled(detail::InlineAction& action,
                         std::uint32_t component_id);

  /// Binary heap over plain 24-byte entries; mutable so empty() and
  /// next_time() can drop tombstones, exactly like the previous lazy
  /// deletion did.
  mutable std::vector<HeapEntry> heap_;
  mutable std::size_t tombstones_ = 0;

  std::vector<std::unique_ptr<detail::EventRecord[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t slot_count_ = 0;
  /// Slot/generation of the event currently being dispatched; lets
  /// cancel() distinguish "still queued" (a heap tombstone appears) from
  /// "cancelling myself mid-dispatch" (its entry was already popped).
  std::uint32_t running_slot_ = kNoSlot;
  std::uint32_t running_generation_ = 0;

  /// Interned component labels; index 0 is the unlabeled sentinel. The
  /// table stays tiny (one entry per distinct label literal), so interning
  /// is a short pointer-compare scan.
  std::vector<std::string_view> components_{std::string_view{}};
  std::uint64_t next_seq_ = 0;
  /// Where push_entry draws sequence numbers; the scheduler's own counter
  /// unless share_sequence() pointed it at a shared one. (Scheduler is
  /// neither copyable nor movable, so the self-pointer is stable.)
  std::uint64_t* seq_src_ = &next_seq_;
  std::uint64_t dispatched_ = 0;
  SimTime last_dispatched_ = SimTime::zero();
  obs::KernelProfiler* profiler_ = nullptr;

  obs::Counter obs_slots_;              ///< sched.pool.slots
  obs::Counter obs_action_inline_;      ///< sched.pool.action.inline
  obs::Counter obs_action_heap_;        ///< sched.pool.action.heap
  obs::Counter obs_cancelled_;          ///< sched.pool.cancelled
  obs::Counter obs_compactions_;        ///< sched.pool.compactions
};

inline void EventId::cancel() noexcept {
  if (scheduler_ != nullptr) scheduler_->cancel_event(slot_, generation_);
}

inline bool EventId::pending() const noexcept {
  return scheduler_ != nullptr &&
         scheduler_->event_pending(slot_, generation_);
}

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_SCHEDULER_H
