// Discrete-event scheduler.
//
// A binary heap keyed by (time, insertion sequence) — the sequence number
// makes simultaneous events fire in scheduling order, so runs are fully
// deterministic. Events can be cancelled in O(1) (lazy deletion).
#ifndef CAVENET_NETSIM_SCHEDULER_H
#define CAVENET_NETSIM_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <vector>

#include "util/sim_time.h"

namespace cavenet::obs {
class KernelProfiler;
}  // namespace cavenet::obs

namespace cavenet::netsim {

namespace detail {
struct EventRecord {
  SimTime at;
  std::uint64_t seq = 0;
  std::function<void()> action;
  /// Index into the scheduler's interned component table ("mac", "aodv",
  /// ...); 0 means unlabeled. Stored as a 4-byte id rather than a
  /// std::string_view so it fits the padding after `cancelled` and the
  /// record stays in the same 56-byte layout (and malloc size class) it
  /// had before profiling existed — event records are the kernel's
  /// hottest allocation.
  std::uint32_t component_id = 0;
  bool cancelled = false;
};
}  // namespace detail

/// Handle to a scheduled event; default-constructed handles are inert.
class EventId {
 public:
  EventId() = default;

  /// Prevents the event from firing. Idempotent; safe after expiry.
  void cancel() noexcept {
    if (auto rec = record_.lock()) rec->cancelled = true;
  }
  /// True if the event is still queued and will fire.
  bool pending() const noexcept {
    const auto rec = record_.lock();
    return rec && !rec->cancelled;
  }

 private:
  friend class Scheduler;
  explicit EventId(std::weak_ptr<detail::EventRecord> rec)
      : record_(std::move(rec)) {}
  std::weak_ptr<detail::EventRecord> record_;
};

class Scheduler {
 public:
  /// Enqueues `action` at absolute time `at`. `at` must not precede the
  /// time of the last dequeued event (no scheduling into the past).
  /// `component` labels the event for kernel profiling and must point at
  /// static storage (pass a string literal).
  EventId schedule_at(SimTime at, std::function<void()> action,
                      std::string_view component = {});

  bool empty() const noexcept;
  /// Time of the earliest pending event; SimTime::max() when empty.
  SimTime next_time() const noexcept;

  /// Dequeues and runs the earliest event. Returns false if none pending.
  bool run_one();

  /// Time of the most recently dequeued event.
  SimTime last_dispatched() const noexcept { return last_dispatched_; }

  std::uint64_t dispatched_count() const noexcept { return dispatched_; }

  /// Queued events, including cancelled ones not yet dropped.
  std::size_t size() const noexcept { return queue_.size(); }

  /// Attaches (or detaches, with nullptr) a kernel profiler. While
  /// attached, every dispatch is wall-clock timed and attributed to the
  /// event's component label; detached costs one branch per event.
  void set_profiler(obs::KernelProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

 private:
  void drop_cancelled() const;
  std::uint32_t intern_component(std::string_view component);
  /// Cold path of run_one: wall-clock the action and feed the profiler.
  /// Outlined (and kept out-of-line) so the unprofiled hot path stays
  /// small — the steady_clock machinery would otherwise bloat run_one.
  void dispatch_profiled(const detail::EventRecord& rec);

  struct Compare {
    bool operator()(const std::shared_ptr<detail::EventRecord>& a,
                    const std::shared_ptr<detail::EventRecord>& b) const {
      if (a->at != b->at) return a->at > b->at;  // min-heap
      return a->seq > b->seq;
    }
  };
  mutable std::priority_queue<std::shared_ptr<detail::EventRecord>,
                              std::vector<std::shared_ptr<detail::EventRecord>>,
                              Compare>
      queue_;
  /// Interned component labels; index 0 is the unlabeled sentinel. The
  /// table stays tiny (one entry per distinct label literal), so interning
  /// is a short pointer-compare scan.
  std::vector<std::string_view> components_{std::string_view{}};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  SimTime last_dispatched_ = SimTime::zero();
  obs::KernelProfiler* profiler_ = nullptr;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_SCHEDULER_H
