// Node mobility: where is a node at simulation time t.
#ifndef CAVENET_NETSIM_MOBILITY_H
#define CAVENET_NETSIM_MOBILITY_H

#include <functional>
#include <memory>

#include "util/sim_time.h"
#include "util/vec2.h"

namespace cavenet::netsim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position(SimTime at) const = 0;
  virtual Vec2 velocity(SimTime at) const = 0;
};

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}
  Vec2 position(SimTime) const override { return position_; }
  Vec2 velocity(SimTime) const override { return {}; }

 private:
  Vec2 position_;
};

/// Wraps arbitrary position/velocity functions of time (seconds). Used to
/// adapt compiled mobility-trace paths without a dependency cycle.
class FunctionMobility final : public MobilityModel {
 public:
  using PositionFn = std::function<Vec2(double)>;
  using VelocityFn = std::function<Vec2(double)>;

  FunctionMobility(PositionFn position, VelocityFn velocity)
      : position_(std::move(position)), velocity_(std::move(velocity)) {}

  Vec2 position(SimTime at) const override { return position_(at.sec()); }
  Vec2 velocity(SimTime at) const override {
    return velocity_ ? velocity_(at.sec()) : Vec2{};
  }

 private:
  PositionFn position_;
  VelocityFn velocity_;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_MOBILITY_H
