// Node mobility: where is a node at simulation time t.
#ifndef CAVENET_NETSIM_MOBILITY_H
#define CAVENET_NETSIM_MOBILITY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "util/sim_time.h"
#include "util/vec2.h"

namespace cavenet::netsim {

/// Computes many nodes' positions at one timestamp in a single virtual
/// call. The channel's per-timestamp position refresh walks thousands of
/// radios; when their mobility models share a provider (one compiled
/// mobility trace, one SoA lane state), serving the refresh in bulk
/// replaces a virtual call + std::function hop per node with one call
/// per batch. Implementations must be pure functions of time (safe to
/// call concurrently) and must return exactly what the per-member
/// position_of returns — the batched path is a dispatch optimization,
/// never a semantic one.
class BatchMobilityProvider {
 public:
  virtual ~BatchMobilityProvider() = default;
  /// Fills out[i] with the position of member `members[i]` at `at`.
  /// out.size() must equal members.size().
  virtual void positions_at(SimTime at,
                            std::span<const std::uint32_t> members,
                            std::span<Vec2> out) const = 0;
  /// Single-member forms (the MobilityModel fallback path).
  virtual Vec2 position_of(std::uint32_t member, SimTime at) const = 0;
  virtual Vec2 velocity_of(std::uint32_t member, SimTime at) const = 0;
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position(SimTime at) const = 0;
  virtual Vec2 velocity(SimTime at) const = 0;
  /// When non-null, position(at) equals
  /// batch_provider()->position_of(batch_member(), at), and bulk position
  /// refreshes may be served through the provider instead of per-node
  /// virtual dispatch.
  virtual const BatchMobilityProvider* batch_provider() const {
    return nullptr;
  }
  virtual std::uint32_t batch_member() const { return 0; }
};

/// A node backed by one member of a BatchMobilityProvider. The provider
/// must outlive the model.
class BatchMobility final : public MobilityModel {
 public:
  BatchMobility(const BatchMobilityProvider* provider, std::uint32_t member)
      : provider_(provider), member_(member) {}

  Vec2 position(SimTime at) const override {
    return provider_->position_of(member_, at);
  }
  Vec2 velocity(SimTime at) const override {
    return provider_->velocity_of(member_, at);
  }
  const BatchMobilityProvider* batch_provider() const override {
    return provider_;
  }
  std::uint32_t batch_member() const override { return member_; }

 private:
  const BatchMobilityProvider* provider_;
  std::uint32_t member_;
};

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}
  Vec2 position(SimTime) const override { return position_; }
  Vec2 velocity(SimTime) const override { return {}; }

 private:
  Vec2 position_;
};

/// Wraps arbitrary position/velocity functions of time (seconds). Used to
/// adapt compiled mobility-trace paths without a dependency cycle.
class FunctionMobility final : public MobilityModel {
 public:
  using PositionFn = std::function<Vec2(double)>;
  using VelocityFn = std::function<Vec2(double)>;

  FunctionMobility(PositionFn position, VelocityFn velocity)
      : position_(std::move(position)), velocity_(std::move(velocity)) {}

  Vec2 position(SimTime at) const override { return position_(at.sec()); }
  Vec2 velocity(SimTime at) const override {
    return velocity_ ? velocity_(at.sec()) : Vec2{};
  }

 private:
  PositionFn position_;
  VelocityFn velocity_;
};

}  // namespace cavenet::netsim

#endif  // CAVENET_NETSIM_MOBILITY_H
