#include "netsim/simulator.h"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/trace_sink.h"
#include "util/logging.h"

namespace cavenet::netsim {

void Simulator::enable_parallel(const ParallelConfig& config) {
  config.validate();
  if (parallel_enabled_) {
    throw std::logic_error("enable_parallel: already enabled");
  }
  if (events_dispatched() != 0 || queue_depth() != 0 ||
      now_ != SimTime::zero()) {
    throw std::logic_error(
        "enable_parallel must be called before any event is scheduled");
  }
  parallel_enabled_ = true;
  epoch_interval_ = SimTime::from_seconds(config.epoch_s);
  next_epoch_ = epoch_interval_;
  if (config.shards > 1) {
    enable_sharding(static_cast<std::uint32_t>(config.shards));
  }
  const int threads = exec::resolve_workers(config.threads);
  if (threads > 1 && executor_ == &inline_executor_) {
    pool_ = std::make_unique<exec::ThreadPoolExecutor>(threads);
    executor_ = pool_.get();
  }
}

void Simulator::bind_parallel_stats(obs::StatsRegistry& registry) {
  obs_epoch_barriers_ = registry.counter("shard.epoch_barriers");
  // Re-publish barriers crossed before the registry was attached.
  obs_epoch_barriers_.inc(epoch_barriers_);
}

void Simulator::publish_exec_stats(obs::StatsRegistry& registry) const {
  if (!pool_) return;
  const exec::ThreadPoolExecutor::Diagnostics d = pool_->diagnostics();
  registry.counter("exec.batches").inc(d.batches);
  registry.counter("exec.tasks").inc(d.tasks);
  registry.counter("exec.chunks").inc(d.chunks);
  for (std::size_t i = 0; i < d.lane_busy_ms.size(); ++i) {
    registry.gauge("exec.worker" + std::to_string(i) + ".wall_ms")
        .set(d.lane_busy_ms[i]);
  }
}

void Simulator::run_epoch_barriers(SimTime at) {
  while (next_epoch_ <= at) {
    for (const auto& task : epoch_tasks_) task(next_epoch_);
    ++epoch_barriers_;
    obs_epoch_barriers_.inc();
    next_epoch_ = next_epoch_ + epoch_interval_;
  }
}

void Simulator::enable_sharding(std::uint32_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("enable_sharding: shard count must be >= 1");
  }
  if (!extra_shards_.empty()) {
    throw std::logic_error("enable_sharding: sharding already enabled");
  }
  if (events_dispatched() != 0 || queue_depth() != 0 ||
      now_ != SimTime::zero()) {
    throw std::logic_error(
        "enable_sharding must be called before any event is scheduled");
  }
  if (shards == 1) return;
  // One sequence counter across every shard: the merged (time, seq)
  // dispatch order is then exactly the order a single queue would have
  // produced, because schedule() calls happen in the same order and draw
  // the same sequence numbers.
  scheduler_.share_sequence(&shared_seq_);
  extra_shards_.reserve(shards - 1);
  for (std::uint32_t i = 1; i < shards; ++i) {
    auto s = std::make_unique<Scheduler>();
    s->share_sequence(&shared_seq_);
    s->set_profiler(profiler_);
    extra_shards_.push_back(std::move(s));
  }
}

std::uint32_t Simulator::pick_next_shard(SimTime& at) const noexcept {
  std::uint32_t best = shard_count();
  SimTime best_at = SimTime::max();
  std::uint64_t best_seq = 0;
  SimTime t{};
  std::uint64_t seq = 0;
  if (scheduler_.peek_next(t, seq)) {
    best = 0;
    best_at = t;
    best_seq = seq;
  }
  for (std::uint32_t i = 0; i < extra_shards_.size(); ++i) {
    if (!extra_shards_[i]->peek_next(t, seq)) continue;
    if (t < best_at || (t == best_at && seq < best_seq)) {
      best = i + 1;
      best_at = t;
      best_seq = seq;
    }
  }
  at = best_at;
  return best;
}

void Simulator::run() {
  stopped_ = false;
  if (extra_shards_.empty()) {
    while (!stopped_ && !scheduler_.empty()) {
      now_ = scheduler_.next_time();
      scheduler_.run_one();
    }
    return;
  }
  while (!stopped_) {
    SimTime at{};
    const std::uint32_t next = pick_next_shard(at);
    if (next == shard_count()) break;
    if (epoch_due(at)) run_epoch_barriers(at);
    now_ = at;
    current_shard_ = next;
    shard(next).run_one();
  }
  current_shard_ = 0;
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  if (extra_shards_.empty()) {
    while (!stopped_ && !scheduler_.empty() &&
           scheduler_.next_time() <= until) {
      now_ = scheduler_.next_time();
      scheduler_.run_one();
    }
    if (!stopped_ && now_ < until) now_ = until;
    return;
  }
  while (!stopped_) {
    SimTime at{};
    const std::uint32_t next = pick_next_shard(at);
    if (next == shard_count() || at > until) break;
    if (epoch_due(at)) run_epoch_barriers(at);
    now_ = at;
    current_shard_ = next;
    shard(next).run_one();
  }
  current_shard_ = 0;
  if (!stopped_ && now_ < until) now_ = until;
}

void Simulator::enable_heartbeat(SimTime interval) {
  if (interval <= SimTime::zero()) {
    throw std::invalid_argument("heartbeat interval must be > 0");
  }
  heartbeat_interval_ = interval;
  heartbeat_wall_start_ = std::chrono::steady_clock::now();
  last_heartbeat_wall_ = heartbeat_wall_start_;
  last_heartbeat_sim_ = now_;
  last_heartbeat_events_ = events_dispatched();
  schedule(interval, "sim.heartbeat", [this] { heartbeat(); });
}

void Simulator::heartbeat() {
  const auto wall_now = std::chrono::steady_clock::now();
  const double wall_delta_s =
      std::chrono::duration<double>(wall_now - last_heartbeat_wall_).count();
  const double wall_total_s =
      std::chrono::duration<double>(wall_now - heartbeat_wall_start_).count();
  const std::uint64_t events = events_dispatched();
  const double events_per_s =
      wall_delta_s > 0.0
          ? static_cast<double>(events - last_heartbeat_events_) / wall_delta_s
          : 0.0;
  const double sim_delta_s = (now_ - last_heartbeat_sim_).sec();
  const double speedup = wall_delta_s > 0.0 ? sim_delta_s / wall_delta_s : 0.0;
  const std::size_t depth = queue_depth();

  if (log_enabled(LogLevel::kInfo)) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "t=%.1fs wall=%.1fs events=%llu rate=%.0f ev/s "
                  "speedup=%.1fx queue=%zu",
                  now_.sec(), wall_total_s,
                  static_cast<unsigned long long>(events), events_per_s,
                  speedup, depth);
    log_line(LogLevel::kInfo, "heartbeat", buf);
  }
  if (trace_sink_ != nullptr) {
    obs::TraceEvent e;
    e.ts = now_;
    e.phase = obs::TraceEvent::Phase::kCounter;
    e.category = "kernel";
    e.name = "sim.events_per_sec";
    e.value = events_per_s;
    trace_sink_->emit(e);
    e.name = "sim.queue_depth";
    e.value = static_cast<double>(depth);
    trace_sink_->emit(e);
    e.name = "sim.speedup";
    e.value = speedup;
    trace_sink_->emit(e);
  }

  last_heartbeat_wall_ = wall_now;
  last_heartbeat_sim_ = now_;
  last_heartbeat_events_ = events;

  // Keep beating only while other work remains: the heartbeat must never
  // keep the queue alive on its own.
  if (!scheduler_.empty()) {
    schedule(heartbeat_interval_, "sim.heartbeat", [this] { heartbeat(); });
  }
}

}  // namespace cavenet::netsim
