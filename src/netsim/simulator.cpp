#include "netsim/simulator.h"

#include <stdexcept>

namespace cavenet::netsim {

EventId Simulator::schedule(SimTime delay, std::function<void()> action) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument("negative delay: " + delay.to_string());
  }
  return scheduler_.schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime at, std::function<void()> action) {
  if (at < now_) {
    throw std::invalid_argument("scheduling into the past: " + at.to_string());
  }
  return scheduler_.schedule_at(at, std::move(action));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !scheduler_.empty()) {
    now_ = scheduler_.next_time();
    scheduler_.run_one();
  }
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !scheduler_.empty() && scheduler_.next_time() <= until) {
    now_ = scheduler_.next_time();
    scheduler_.run_one();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace cavenet::netsim
