// The observability surface a scenario wires into its simulation: four
// optional, non-owning sinks shared by every scenario config (Table-I,
// the scale sweep, future workloads) instead of being re-declared on each
// config struct.
#ifndef CAVENET_SCENARIO_OBS_HOOKS_H
#define CAVENET_SCENARIO_OBS_HOOKS_H

#include "netsim/packet_log.h"
#include "obs/kernel_profiler.h"
#include "obs/stats_registry.h"
#include "obs/trace_sink.h"

namespace cavenet::scenario {

/// All pointers optional and non-owning; the caller keeps the sinks alive
/// for the duration of the run.
struct ObsHooks {
  /// Packet event log: every node's MAC and routing layers record
  /// send/receive/forward/drop events into it, ns-2 style.
  netsim::PacketLog* packet_log = nullptr;
  /// Stats registry every layer of every node publishes counters into
  /// ("mac.*", "phy.*", "chan.*", "rtr.*", "agt.*"); the runner adds
  /// run-level gauges ("sim.events.dispatched", "chan.utilization", ...)
  /// post-run.
  obs::StatsRegistry* stats = nullptr;
  /// Structured trace sink: the kernel heartbeat and the packet log (when
  /// both are set) emit into it.
  obs::TraceSink* trace_sink = nullptr;
  /// Kernel profiler: per-component dispatch counts and handler wall time.
  obs::KernelProfiler* profiler = nullptr;

  /// True when a single-writer sink is wired. The stats registry merges
  /// deterministically across ensemble workers, but these three do not —
  /// configs wiring any of them must run their ensembles serially.
  bool has_serial_sink() const noexcept {
    return packet_log != nullptr || trace_sink != nullptr ||
           profiler != nullptr;
  }
};

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_OBS_HOOKS_H
