#include "scenario/table1.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "app/cbr.h"
#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "netsim/mobility.h"
#include "netsim/simulator.h"
#include "phy/channel.h"
#include "runner/ensemble.h"
#include "trace/ns2_format.h"
#include "trace/trace_generator.h"

namespace cavenet::scenario {

using netsim::NodeId;

trace::MobilityTrace make_table1_trace(const TableIConfig& config) {
  ca::NasParams params;
  params.lane_length = config.lane_cells;
  params.slowdown_p = config.slowdown_p;
  params.boundary = ca::Boundary::kClosed;
  ca::NasLane lane(params, config.vehicles, ca::InitialPlacement::kRandom,
                   Rng(config.seed, 0x6d6f62));

  ca::Road road;
  const double length_m = params.lane_length_m();
  if (config.circular_layout) {
    road.add_lane(std::move(lane), ca::make_circuit(length_m));
  } else {
    road.add_lane(std::move(lane), ca::make_line(length_m));
  }

  trace::TraceGeneratorOptions options;
  options.steps = static_cast<std::int64_t>(config.duration_s);
  options.delta_offset = 1.0;
  trace::MobilityTrace mobility = trace::generate_trace(road, options);

  if (config.round_trip_trace_through_ns2_format) {
    std::stringstream buffer;
    trace::write_ns2(mobility, buffer);
    mobility = trace::read_ns2(buffer);
  }
  return mobility;
}

namespace {

std::unique_ptr<phy::PropagationModel> make_propagation(
    const TableIConfig& config, const netsim::Simulator& sim) {
  switch (config.propagation) {
    case Propagation::kTwoRayGround:
      return std::make_unique<phy::TwoRayGroundModel>();
    case Propagation::kFreeSpace:
      return std::make_unique<phy::FreeSpaceModel>();
    case Propagation::kShadowing:
      return std::make_unique<phy::ShadowingModel>(
          config.shadowing_exponent, config.shadowing_sigma_db,
          sim.make_rng(0x73686164));
    case Propagation::kRayleigh:
      return std::make_unique<phy::RayleighFadingModel>(
          std::make_unique<phy::TwoRayGroundModel>(),
          sim.make_rng(0x66616465));
  }
  throw std::invalid_argument("unknown propagation model");
}

/// Derives the channel's sharding plan from the mobility trace: the
/// x-extent over every position the trace can visit, plus the certified
/// max speed over all setdest events (the drift bound the shard map's
/// conservative lookahead rests on). Returns nullopt — run unsharded —
/// when config doesn't ask for shards, when the trace teleports nodes
/// mid-run (the straight-line layout's lane-wrap jumps violate any speed
/// bound), or when the trace has no x extent at all.
std::optional<phy::ShardPlan> make_shard_plan(
    const trace::MobilityTrace& mobility, const TableIConfig& config) {
  if (config.parallel.shards <= 1) return std::nullopt;
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double max_speed = 0.0;
  for (const Vec2& p : mobility.initial_positions) {
    x_min = std::min(x_min, p.x);
    x_max = std::max(x_max, p.x);
  }
  for (const trace::TraceEvent& e : mobility.events) {
    if (e.kind == trace::TraceEvent::Kind::kSetPosition && e.time_s > 0.0) {
      return std::nullopt;
    }
    x_min = std::min(x_min, e.target.x);
    x_max = std::max(x_max, e.target.x);
    if (e.kind == trace::TraceEvent::Kind::kSetDest) {
      max_speed = std::max(max_speed, e.speed_ms);
    }
  }
  if (!(x_max > x_min)) return std::nullopt;
  phy::ShardPlan plan;
  plan.shards = static_cast<std::uint32_t>(config.parallel.shards);
  plan.x_min = x_min;
  plan.x_max = x_max;
  plan.epoch_s = config.parallel.epoch_s;
  plan.max_speed_mps = max_speed;
  return plan;
}

/// Bulk position source over the compiled per-node paths: the channel's
/// per-timestamp snapshot refresh makes one virtual call per batch of
/// nodes instead of a virtual hop + std::function hop per node. Member
/// ids are node ids; the arithmetic per node is NodePath::position /
/// ::velocity either way, so runs are byte-identical to the per-node
/// FunctionMobility wiring this replaces.
class PathTableProvider final : public netsim::BatchMobilityProvider {
 public:
  explicit PathTableProvider(const std::vector<trace::NodePath>& paths)
      : paths_(&paths) {}

  void positions_at(SimTime at, std::span<const std::uint32_t> members,
                    std::span<Vec2> out) const override {
    const double t = at.sec();
    for (std::size_t i = 0; i < members.size(); ++i) {
      out[i] = (*paths_)[members[i]].position(t);
    }
  }
  Vec2 position_of(std::uint32_t member, SimTime at) const override {
    return (*paths_)[member].position(at.sec());
  }
  Vec2 velocity_of(std::uint32_t member, SimTime at) const override {
    return (*paths_)[member].velocity(at.sec());
  }

 private:
  const std::vector<trace::NodePath>* paths_;
};

/// One node's full protocol stack. Declaration order fixes teardown order
/// (in particular: `link` detaches from the channel while `phy` is still
/// alive).
struct NodeStack {
  std::unique_ptr<netsim::MobilityModel> mobility;
  std::unique_ptr<phy::WifiPhy> phy;
  phy::Channel::Attachment link;
  std::unique_ptr<mac::WifiMac> mac;
  std::unique_ptr<routing::RoutingProtocol> routing;
};

}  // namespace

std::vector<SenderRunResult> run_with_trace(
    const trace::MobilityTrace& mobility, const TableIConfig& config,
    const std::vector<NodeId>& senders) {
  const auto node_count = static_cast<NodeId>(mobility.node_count());
  if (senders.empty()) throw std::invalid_argument("no senders");
  if (node_count == 0) throw std::invalid_argument("empty mobility trace");
  for (const NodeId sender : senders) {
    if (sender == config.receiver) {
      throw std::invalid_argument("sender must differ from receiver");
    }
    if (sender >= node_count || config.receiver >= node_count) {
      throw std::invalid_argument("sender/receiver beyond node count");
    }
  }

  const std::vector<trace::NodePath> paths = trace::compile_paths(mobility);

  // Telemetry samples a StatsRegistry; when the caller enabled telemetry
  // without wiring one, a run-local registry stands in so the stream is
  // populated either way. The copy keeps config.obs untouched.
  ObsHooks obs = config.obs;
  obs::StatsRegistry local_stats;
  if (config.telemetry.enabled() && obs.stats == nullptr) {
    obs.stats = &local_stats;
  }
  // Parallelism is wired before anything schedules: the shard queues
  // must exist from event zero so the shared sequence counter covers
  // every event of the run. The plan may have demoted shards (teleports,
  // narrow world), so the kernel gets the resolved count, not the
  // requested one.
  const std::optional<phy::ShardPlan> shard_plan =
      make_shard_plan(mobility, config);
  netsim::Simulator sim(config.seed);
  {
    netsim::ParallelConfig kernel_parallel = config.parallel;
    kernel_parallel.shards =
        shard_plan ? static_cast<int>(shard_plan->shards) : 1;
    if (kernel_parallel.enabled()) sim.enable_parallel(kernel_parallel);
  }
  if (obs.trace_sink != nullptr) sim.set_trace_sink(obs.trace_sink);
  if (obs.profiler != nullptr) sim.set_profiler(obs.profiler);
  if (config.heartbeat_s > 0.0) {
    sim.enable_heartbeat(SimTime::from_seconds(config.heartbeat_s));
  }
  if (obs.packet_log != nullptr && obs.trace_sink != nullptr) {
    obs.packet_log->set_trace_sink(obs.trace_sink);
  }
  phy::Channel channel(sim, make_propagation(config, sim),
                       config.channel_index);
  if (shard_plan) channel.configure_shards(*shard_plan);
  if (obs.stats != nullptr) channel.bind_stats(*obs.stats);

  mac::MacParams mac_params;
  mac_params.use_rts_cts = config.use_rts_cts;
  phy::PhyParams phy_params;
  phy_params.data_rate_bps = config.mac_rate_bps;

  // Declared before `nodes` so it outlives every BatchMobility view and
  // the channel's attach-time capture of it.
  PathTableProvider path_provider(paths);
  std::vector<NodeStack> nodes(static_cast<std::size_t>(node_count));
  for (NodeId i = 0; i < node_count; ++i) {
    NodeStack& node = nodes[i];
    node.mobility = std::make_unique<netsim::BatchMobility>(&path_provider, i);
    node.phy =
        std::make_unique<phy::WifiPhy>(sim, i, node.mobility.get(), phy_params);
    node.link = channel.attach(node.phy.get());
    node.mac = std::make_unique<mac::WifiMac>(sim, *node.phy, mac_params, i);
    node.routing = make_protocol(sim, *node.mac, config.protocol,
                                 config.protocol_options);
    if (obs.packet_log != nullptr) {
      node.mac->set_packet_log(obs.packet_log);
      node.routing->set_packet_log(obs.packet_log);
    }
    if (obs.stats != nullptr) {
      node.phy->bind_stats(*obs.stats);
      node.mac->bind_stats(*obs.stats);
      node.routing->bind_stats(*obs.stats);
    }
    node.routing->start();
  }

  app::CbrParams cbr;
  cbr.destination = config.receiver;
  cbr.packets_per_second = config.packets_per_second;
  cbr.payload_bytes = config.payload_bytes;
  cbr.start = SimTime::from_seconds(config.traffic_start_s);
  cbr.stop = SimTime::from_seconds(config.traffic_stop_s);

  std::vector<std::unique_ptr<app::FlowMetrics>> metrics;
  std::vector<std::unique_ptr<app::CbrSource>> sources;
  app::PacketSink sink(sim, *nodes[config.receiver].routing, cbr.dst_port);
  for (const NodeId sender : senders) {
    metrics.push_back(std::make_unique<app::FlowMetrics>());
    sources.push_back(std::make_unique<app::CbrSource>(
        sim, *nodes[sender].routing, cbr, metrics.back().get()));
    if (obs.stats != nullptr) sources.back()->bind_stats(*obs.stats);
    if (obs.packet_log != nullptr) {
      sources.back()->set_packet_log(obs.packet_log);
    }
    sink.track_source(sender, metrics.back().get());
    sources.back()->start();
  }
  if (obs.stats != nullptr) sink.bind_stats(*obs.stats);

  std::optional<obs::TelemetryRecorder> telemetry;
  if (config.telemetry.enabled()) {
    telemetry.emplace(*obs.stats, config.telemetry);
    telemetry->attach(sim);
  }

  sim.run_until(SimTime::from_seconds(config.duration_s));

  // Network-wide aggregates are shared by every per-sender entry.
  SenderRunResult aggregate;
  aggregate.events_dispatched = sim.events_dispatched();
  const routing::RoutingStats& receiver_stats =
      nodes[config.receiver].routing->stats();
  if (receiver_stats.data_delivered > 0) {
    aggregate.mean_hop_count =
        static_cast<double>(receiver_stats.delivered_hops_sum) /
            static_cast<double>(receiver_stats.data_delivered) +
        1.0;  // hops counts forwards; the final link adds one hop
  }
  for (const NodeStack& node : nodes) {
    const routing::RoutingStats& rs = node.routing->stats();
    aggregate.control_packets += rs.control_packets_sent;
    aggregate.control_bytes += rs.control_bytes_sent;
    aggregate.route_discoveries += rs.route_discoveries;
    const mac::MacStats& ms = node.mac->stats();
    aggregate.mac_retries += ms.retries;
    aggregate.mac_tx_failed += ms.data_tx_failed;
    aggregate.mac_collisions += node.phy->stats().collisions;
    aggregate.channel_utilization +=
        node.phy->stats().tx_airtime.sec() / config.duration_s;
  }

  if (obs.stats != nullptr) {
    // Run-level readings that no single layer owns.
    obs.stats->gauge("sim.events.dispatched")
        .set(static_cast<double>(aggregate.events_dispatched));
    obs.stats->gauge("chan.utilization").set(aggregate.channel_utilization);
    std::uint64_t no_route = 0, ttl = 0, buffer = 0;
    for (const NodeStack& node : nodes) {
      const routing::RoutingStats& rs = node.routing->stats();
      no_route += rs.drops_no_route;
      ttl += rs.drops_ttl;
      buffer += rs.drops_buffer;
    }
    obs.stats->counter("rtr.drop.no_route").inc(no_route);
    obs.stats->counter("rtr.drop.ttl").inc(ttl);
    obs.stats->counter("rtr.drop.buffer").inc(buffer);
    if (obs.packet_log != nullptr) {
      obs.stats->counter("log.entries").inc(obs.packet_log->size());
      obs.stats->counter("log.dropped").inc(obs.packet_log->dropped());
    }
    if (obs.profiler != nullptr) obs.profiler->publish(*obs.stats);
  }

  // Final sample after the post-run gauges, so the stream's last line is
  // the complete end-of-run state (what the manifest embeds).
  if (telemetry) telemetry->sample(config.duration_s);

  std::vector<SenderRunResult> results;
  results.reserve(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    SenderRunResult result = aggregate;
    const app::FlowMetrics& m = *metrics[i];
    result.sender = senders[i];
    result.tx_packets = m.tx_packets();
    result.rx_packets = m.rx_packets();
    result.pdr = m.pdr();
    result.mean_delay_s = m.mean_delay_s();
    result.max_delay_s = m.max_delay_s();
    result.first_delivery_delay_s = m.first_delivery_delay_s();
    result.goodput_bps =
        m.goodput_bps(SimTime::from_seconds(config.duration_s));
    if (telemetry) result.telemetry_jsonl = telemetry->jsonl();
    results.push_back(std::move(result));
  }
  return results;
}

SenderRunResult run_table1(const TableIConfig& config) {
  return run_with_trace(make_table1_trace(config), config, {config.sender})
      .front();
}

std::vector<SenderRunResult> run_table1_concurrent(
    const TableIConfig& config, const std::vector<NodeId>& senders) {
  return run_with_trace(make_table1_trace(config), config, senders);
}

std::vector<SenderRunResult> run_all_senders(TableIConfig config,
                                             NodeId first, NodeId last,
                                             int jobs) {
  const std::size_t n = static_cast<std::size_t>(last - first) + 1;
  obs::StatsRegistry* const shared_stats = config.obs.stats;
  // The packet log, trace sink and profiler are single-writer: a config
  // that wires them runs serially (results are identical either way).
  runner::EnsembleOptions options;
  options.jobs = config.obs.has_serial_sink() ? 1 : jobs;
  options.master_seed = config.seed;
  runner::EnsembleRunner pool(options);
  return pool.map<SenderRunResult>(
      n,
      [&config, shared_stats, first](runner::ReplicationContext& ctx) {
        TableIConfig run = config;
        run.sender = first + static_cast<NodeId>(ctx.index);
        // The scenario seeds every component stream from run.seed, so the
        // runner's ctx.rng is not consumed here; the per-replication
        // registry stands in for the caller's shared one and is merged
        // back in sender order.
        run.obs.stats = shared_stats != nullptr ? ctx.stats : nullptr;
        return run_table1(run);
      },
      shared_stats);
}

}  // namespace cavenet::scenario
