#include "scenario/run_record.h"

#include <cstdint>

namespace cavenet::scenario {

obs::RunManifest make_run_manifest(std::string name,
                                   const TableIConfig& config,
                                   const std::vector<SenderRunResult>& results,
                                   double wall_duration_s) {
  obs::RunManifest m;
  m.name = std::move(name);
  m.seed = config.seed;
  m.sim_duration_s = config.duration_s;
  m.wall_duration_s = wall_duration_s;

  m.set_param("protocol", to_string(config.protocol));
  m.set_param("vehicles", static_cast<std::int64_t>(config.vehicles));
  m.set_param("lane_cells", static_cast<std::int64_t>(config.lane_cells));
  m.set_param("slowdown_p", config.slowdown_p);
  m.set_param("circular_layout", config.circular_layout);
  m.set_param("receiver", static_cast<std::uint64_t>(config.receiver));
  m.set_param("packets_per_second", config.packets_per_second);
  m.set_param("payload_bytes",
              static_cast<std::uint64_t>(config.payload_bytes));
  m.set_param("traffic_start_s", config.traffic_start_s);
  m.set_param("traffic_stop_s", config.traffic_stop_s);
  m.set_param("mac_rate_bps", config.mac_rate_bps);
  m.set_param("use_rts_cts", config.use_rts_cts);
  // Executor lanes the run was produced with. A performance setting, not
  // scenario identity — strip_volatile() removes it so stripped
  // manifests stay byte-identical across --threads values.
  m.set_param("threads", static_cast<std::int64_t>(config.parallel.threads));

  double tx = 0.0, rx = 0.0;
  for (const SenderRunResult& r : results) {
    tx += static_cast<double>(r.tx_packets);
    rx += static_cast<double>(r.rx_packets);
  }
  m.set_metric("tx_packets", tx);
  m.set_metric("rx_packets", rx);
  m.set_metric("pdr", tx > 0.0 ? rx / tx : 0.0);
  if (!results.empty()) {
    const SenderRunResult& first = results.front();
    m.set_metric("mean_delay_s", first.mean_delay_s);
    m.set_metric("mean_hop_count", first.mean_hop_count);
    m.set_metric("control_packets", static_cast<double>(first.control_packets));
    m.set_metric("control_bytes", static_cast<double>(first.control_bytes));
    m.set_metric("mac_collisions", static_cast<double>(first.mac_collisions));
    m.set_metric("mac_retries", static_cast<double>(first.mac_retries));
    m.set_metric("channel_utilization", first.channel_utilization);
    m.events_dispatched = first.events_dispatched;
    if (wall_duration_s > 0.0) {
      m.events_per_wall_second =
          static_cast<double>(first.events_dispatched) / wall_duration_s;
    }
  }

  if (config.obs.stats != nullptr) m.stats = config.obs.stats->snapshot();
  return m;
}

}  // namespace cavenet::scenario
