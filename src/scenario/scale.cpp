#include "scenario/scale.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/kernel_profiler.h"
#include "runner/ensemble.h"

namespace cavenet::scenario {

ScaleRunResult run_scale(const ScaleConfig& config) {
  if (config.vehicles < 2) {
    throw std::invalid_argument("scale scenario needs at least 2 vehicles");
  }

  TableIConfig table;
  table.protocol = config.protocol;
  table.vehicles = config.vehicles;
  table.lane_cells = std::max<std::int64_t>(
      static_cast<std::int64_t>(
          std::llround(config.cells_per_vehicle * config.vehicles)),
      config.vehicles);
  table.slowdown_p = config.slowdown_p;
  table.receiver = config.receiver;
  table.sender = config.sender;
  table.packets_per_second = config.packets_per_second;
  table.payload_bytes = config.payload_bytes;
  table.traffic_start_s = config.traffic_start_s;
  table.traffic_stop_s = config.duration_s;
  table.duration_s = config.duration_s;
  table.seed = config.seed;
  table.channel_index = config.channel_index;
  table.parallel = config.parallel;
  table.obs = config.obs;

  // The sweep's whole point is measuring channel and kernel cost, so
  // stand in local instruments for any the caller did not wire.
  obs::StatsRegistry local_stats;
  obs::KernelProfiler local_profiler;
  if (table.obs.stats == nullptr) table.obs.stats = &local_stats;
  if (table.obs.profiler == nullptr) table.obs.profiler = &local_profiler;

  const auto wall_start = std::chrono::steady_clock::now();
  SenderRunResult flow = run_table1(table);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ScaleRunResult result;
  result.vehicles = config.vehicles;
  result.protocol = config.protocol;
  result.shards = config.parallel.shards;
  result.threads = config.parallel.threads;
  result.flow = std::move(flow);
  result.stats = table.obs.stats->snapshot();
  result.transmissions = result.stats.counter("chan.tx");
  result.rx_power_evaluated = result.stats.counter("chan.evaluated");
  result.rx_power_culled = result.stats.counter("chan.culled");
  if (result.rx_power_evaluated > 0) {
    result.cull_factor =
        static_cast<double>(result.rx_power_evaluated +
                            result.rx_power_culled) /
        static_cast<double>(result.rx_power_evaluated);
  }
  result.kernel_wall_ms =
      static_cast<double>(table.obs.profiler->total_wall_ns()) / 1e6;
  result.wall_s = wall_s;
  return result;
}

std::vector<ScaleRunResult> run_scale_sweep(std::span<const ScaleConfig> sweep,
                                            int jobs) {
  bool serial = false;
  for (const ScaleConfig& config : sweep) {
    serial = serial || config.obs.has_serial_sink();
  }
  runner::EnsembleOptions options;
  options.jobs = serial ? 1 : jobs;
  options.master_seed = sweep.empty() ? 1 : sweep.front().seed;
  runner::EnsembleRunner pool(options);
  // Each point snapshots its own registry into the result, so nothing is
  // merged across points (mixing N=30 and N=1000 counters would make the
  // aggregate meaningless).
  return pool.map<ScaleRunResult>(
      sweep.size(), [&sweep](runner::ReplicationContext& ctx) {
        return run_scale(sweep[ctx.index]);
      });
}

}  // namespace cavenet::scenario
