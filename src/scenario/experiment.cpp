#include "scenario/experiment.h"

#include <cmath>
#include <numeric>

#include "analysis/stats.h"
#include "runner/ensemble.h"

namespace cavenet::scenario {

Estimate estimate(std::span<const double> samples) {
  Estimate out;
  out.n = samples.size();
  if (samples.empty()) return out;
  out.mean = analysis::mean(samples);
  out.stddev = analysis::stddev(samples);
  if (out.n > 1) {
    out.ci95 = 1.96 * out.stddev / std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

SeedSweepResult run_seed_sweep(TableIConfig config,
                               std::span<const std::uint64_t> seeds,
                               int jobs) {
  obs::StatsRegistry* const shared_stats = config.obs.stats;
  runner::EnsembleOptions options;
  options.jobs = config.obs.has_serial_sink() ? 1 : jobs;
  options.master_seed = seeds.empty() ? config.seed : seeds.front();
  runner::EnsembleRunner pool(options);

  SeedSweepResult result;
  result.runs = pool.map<SenderRunResult>(
      seeds.size(),
      [&config, shared_stats, seeds](runner::ReplicationContext& ctx) {
        TableIConfig run = config;
        run.seed = seeds[ctx.index];
        run.obs.stats = shared_stats != nullptr ? ctx.stats : nullptr;
        return run_table1(run);
      },
      shared_stats);

  std::vector<double> pdrs, delays, bytes, first_deliveries;
  for (const SenderRunResult& run : result.runs) {
    pdrs.push_back(run.pdr);
    delays.push_back(run.mean_delay_s);
    bytes.push_back(static_cast<double>(run.control_bytes));
    if (run.first_delivery_delay_s >= 0.0) {
      first_deliveries.push_back(run.first_delivery_delay_s);
    }
  }
  result.pdr = estimate(pdrs);
  result.mean_delay_s = estimate(delays);
  result.control_bytes = estimate(bytes);
  result.first_delivery_delay_s = estimate(first_deliveries);
  return result;
}

double jain_fairness(std::span<const double> throughputs) {
  if (throughputs.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : throughputs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(throughputs.size()) * sum_sq);
}

std::vector<std::uint64_t> default_seeds(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 1);
  return seeds;
}

}  // namespace cavenet::scenario
