// Builds a RunManifest from a Table-I scenario run: config parameters,
// per-sender result metrics, and (when a registry was wired) the final
// stats snapshot. Scenario drivers and benches call this once per run and
// write the manifest next to their CSV output.
#ifndef CAVENET_SCENARIO_RUN_RECORD_H
#define CAVENET_SCENARIO_RUN_RECORD_H

#include <string>
#include <vector>

#include "obs/run_manifest.h"
#include "scenario/table1.h"

namespace cavenet::scenario {

/// Assembles a manifest named `name` for one run_with_trace() outcome.
/// `wall_duration_s` is the measured wall clock of the run (0 if unknown).
/// When config.obs.stats is set, its snapshot is embedded.
obs::RunManifest make_run_manifest(std::string name,
                                   const TableIConfig& config,
                                   const std::vector<SenderRunResult>& results,
                                   double wall_duration_s = 0.0);

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_RUN_RECORD_H
