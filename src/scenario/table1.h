// The paper's Table-I scenario: 30 vehicles on a 3000 m circuit driven by
// the NaS cellular automaton, IEEE 802.11 DCF at 2 Mbps with two-ray
// ground propagation and 250 m range, and one CBR flow (5 packets/s,
// 512 bytes, t = 10..90 s) from a sender node to receiver node 0.
//
// The paper prepares one scenario per sender id (1..8) over the same
// mobility pattern; run_all_senders() reproduces that sweep.
#ifndef CAVENET_SCENARIO_TABLE1_H
#define CAVENET_SCENARIO_TABLE1_H

#include <cstdint>
#include <vector>

#include <string>

#include "app/flow_metrics.h"
#include "mac/wifi_mac.h"
#include "netsim/parallel.h"
#include "obs/telemetry.h"
#include "phy/channel.h"
#include "phy/wifi_phy.h"
#include "routing/common.h"
#include "scenario/obs_hooks.h"
#include "scenario/protocol.h"
#include "trace/mobility_trace.h"

namespace cavenet::scenario {

enum class Propagation { kTwoRayGround, kFreeSpace, kShadowing, kRayleigh };

struct TableIConfig {
  Protocol protocol = Protocol::kAodv;
  ProtocolOptions protocol_options;

  // Mobility (Behavioural Analyzer block).
  std::int64_t lane_cells = 400;    ///< 400 x 7.5 m = 3000 m circuit
  std::int32_t vehicles = 30;       ///< Table I: 30 nodes
  /// NaS random-slowdown probability. The paper leaves it unstated; 0.7
  /// puts the 30-vehicle circuit in the jam-cluster regime, which produces
  /// the intermittent connectivity gaps behind the paper's goodput bursts
  /// and its PDR spread (0.4..1.0). Lower p (e.g. 0.3) keeps spacing
  /// homogeneous and yields near-perfect delivery for every protocol.
  double slowdown_p = 0.7;
  /// Circular layout (the paper's improved CAVENET). false = the original
  /// straight-line layout, kept for the boundary ablation.
  bool circular_layout = true;

  // Traffic.
  netsim::NodeId receiver = 0;
  netsim::NodeId sender = 1;
  double packets_per_second = 5.0;
  std::size_t payload_bytes = 512;
  double traffic_start_s = 10.0;
  double traffic_stop_s = 90.0;

  // Simulation.
  double duration_s = 100.0;
  std::uint64_t seed = 1;
  /// Kernel parallelism (docs/SCALING.md): `parallel.shards` partitions
  /// the world into up to that many strips, each with its own scheduler
  /// pool and channel snapshot; `parallel.threads` adds executor lanes
  /// for epoch-batched precompute; `parallel.epoch_s` is the rebucket /
  /// barrier cadence. Results are byte-identical at every (shards,
  /// threads) pair. The run falls back to one shard when the trace
  /// cannot certify a max speed (mid-run teleports, e.g. the
  /// straight-line layout's lane-wrap jumps) or the world is too small
  /// to hold two interaction-radius-wide strips.
  netsim::ParallelConfig parallel;

  // Radio.
  /// MAC data rate (Table I: 2 Mbps). The PLCP preamble stays at the DSSS
  /// long-preamble timing regardless of rate.
  double mac_rate_bps = 2e6;
  Propagation propagation = Propagation::kTwoRayGround;
  double shadowing_exponent = 2.8;   ///< used when propagation == kShadowing
  double shadowing_sigma_db = 4.0;
  bool use_rts_cts = false;          ///< Table I: RTS/CTS none
  /// Candidate-receiver lookup on the shared medium. kGrid (default) and
  /// kLinear produce bitwise-identical runs; kLinear is the brute-force
  /// reference for equivalence tests and index-win measurements.
  phy::ChannelIndex channel_index = phy::ChannelIndex::kGrid;

  /// When set, the mobility trace is serialized to ns-2 text and parsed
  /// back before use, exercising the paper's two-block file interface.
  bool round_trip_trace_through_ns2_format = false;

  /// Observability sinks (all optional, non-owning; see ObsHooks).
  ObsHooks obs;
  /// Progress heartbeat period in sim seconds; 0 disables.
  double heartbeat_s = 0.0;
  /// In-run stats snapshots at a fixed sim-time period (see
  /// obs/telemetry.h); the JSONL stream lands in
  /// SenderRunResult::telemetry_jsonl. Works without obs.stats wired —
  /// the run then samples a private registry.
  obs::TelemetryOptions telemetry;
};

/// Outcome of one (protocol, sender) run.
struct SenderRunResult {
  netsim::NodeId sender = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  double pdr = 0.0;
  double mean_delay_s = 0.0;
  double max_delay_s = 0.0;
  double first_delivery_delay_s = -1.0;
  /// Mean hop count over all packets the receiver delivered in this run
  /// (shared across concurrent flows; 0 when nothing was delivered).
  double mean_hop_count = 0.0;
  /// Per-second goodput series over the whole run, bits/second (Fig. 8-10
  /// rows of the goodput surface).
  std::vector<double> goodput_bps;

  // Aggregates across all 30 nodes.
  std::uint64_t control_packets = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t route_discoveries = 0;
  std::uint64_t mac_collisions = 0;
  std::uint64_t mac_retries = 0;
  std::uint64_t mac_tx_failed = 0;
  std::uint64_t events_dispatched = 0;
  /// Fraction of the run's wall-clock the channel carried transmissions
  /// (sum of per-node TX airtime / duration; can exceed 1 with spatial
  /// reuse or simultaneous/colliding transmitters).
  double channel_utilization = 0.0;

  /// Telemetry snapshot stream (one JSON object per line) when
  /// TableIConfig::telemetry is enabled; empty otherwise. Shared across
  /// the per-sender entries of one simulation, like the aggregates.
  std::string telemetry_jsonl;
};

/// Runs the Table-I scenario for config.sender.
SenderRunResult run_table1(const TableIConfig& config);

/// Runs senders 1..8 (paper setup) over the same mobility pattern, one
/// scenario per sender as the paper does.
///
/// `jobs` fans the per-sender runs out over an EnsembleRunner worker
/// pool (<= 0 means one per hardware thread). Results and any stats
/// published into config.obs.stats are bitwise-identical for every jobs
/// value: each run draws from its own seed-derived streams and the
/// per-run registries merge in sender order. When config wires a shared
/// packet_log / trace_sink / profiler, the runs fall back to serial —
/// those sinks are single-writer by design.
std::vector<SenderRunResult> run_all_senders(TableIConfig config,
                                             netsim::NodeId first = 1,
                                             netsim::NodeId last = 8,
                                             int jobs = 1);

/// Variation the paper hints at ("if we increase the background traffic
/// ... the network may be congested"): all `senders` transmit to node 0
/// concurrently within ONE simulation. Returns one result per sender;
/// network-wide aggregates (control bytes etc.) are identical across the
/// returned entries since they describe the same run.
std::vector<SenderRunResult> run_table1_concurrent(
    const TableIConfig& config, const std::vector<netsim::NodeId>& senders);

/// Builds the Table-I mobility trace alone (shared by tests/benches).
trace::MobilityTrace make_table1_trace(const TableIConfig& config);

/// Generic runner: the same protocol stack and traffic plan over ANY
/// mobility trace (urban grids, Random Waypoint, externally generated
/// ns-2 files). The trace's node count replaces config.vehicles; the
/// mobility-related config fields (lane_cells, slowdown_p, layout) are
/// ignored.
std::vector<SenderRunResult> run_with_trace(
    const trace::MobilityTrace& mobility, const TableIConfig& config,
    const std::vector<netsim::NodeId>& senders);

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_TABLE1_H
