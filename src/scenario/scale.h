// Large-N scaling scenario: the Table-I protocol stack at constant
// vehicle density on proportionally longer circuits (30 vehicles / 3000 m
// scaled up to hundreds or thousands of nodes), instrumented to answer
// "what does one transmission cost as the network grows": events
// dispatched, receive-power evaluations performed vs culled by the
// channel's spatial index, and kernel wall time per component.
#ifndef CAVENET_SCENARIO_SCALE_H
#define CAVENET_SCENARIO_SCALE_H

#include <cstdint>
#include <span>
#include <vector>

#include "obs/stats_registry.h"
#include "scenario/obs_hooks.h"
#include "scenario/table1.h"

namespace cavenet::scenario {

struct ScaleConfig {
  Protocol protocol = Protocol::kAodv;
  std::int32_t vehicles = 1000;
  /// Lane cells per vehicle; the Table-I density (400 cells / 30
  /// vehicles at 7.5 m per cell = 10 veh/km) is kept as N grows so the
  /// neighbourhood a transmission reaches stays scenario-realistic.
  double cells_per_vehicle = 400.0 / 30.0;
  double slowdown_p = 0.7;

  // One CBR flow, Table-I shaped, across the scaled circuit.
  netsim::NodeId receiver = 0;
  netsim::NodeId sender = 1;
  double packets_per_second = 5.0;
  std::size_t payload_bytes = 512;
  double traffic_start_s = 5.0;

  double duration_s = 30.0;
  std::uint64_t seed = 1;
  phy::ChannelIndex channel_index = phy::ChannelIndex::kGrid;
  /// Kernel parallelism for the run (see TableIConfig::parallel);
  /// results are byte-identical at any (shards, threads) pair, only the
  /// wall clock moves.
  netsim::ParallelConfig parallel;

  /// Shared with TableIConfig. When obs.stats is null, run_scale records
  /// into a private registry so the channel-index counters below are
  /// always measured; when obs.profiler is null, a private kernel
  /// profiler is attached for the same reason.
  ObsHooks obs;
};

/// One scale point's outcome: the flow result plus the cost measurements
/// the sweep exists for.
struct ScaleRunResult {
  std::int32_t vehicles = 0;
  Protocol protocol = Protocol::kAodv;
  int shards = 1;   ///< requested shard count (ScaleConfig::parallel)
  int threads = 1;  ///< requested executor lanes (ScaleConfig::parallel)
  SenderRunResult flow;

  std::uint64_t transmissions = 0;      ///< chan.tx
  std::uint64_t rx_power_evaluated = 0; ///< chan.evaluated
  std::uint64_t rx_power_culled = 0;    ///< chan.culled
  /// (evaluated + culled) / evaluated: how many receive-power
  /// evaluations a full O(N) fan-out would have cost per one actually
  /// performed. 1.0 means no culling.
  double cull_factor = 1.0;

  double kernel_wall_ms = 0.0;  ///< handler wall time (kernel profiler)
  double wall_s = 0.0;          ///< whole-run wall clock
  obs::StatsSnapshot stats;     ///< full registry snapshot of this run
};

/// Runs one scale point. Deterministic given (config, build) except for
/// the wall-clock fields.
ScaleRunResult run_scale(const ScaleConfig& config);

/// Runs a sweep of scale points, fanned across an EnsembleRunner pool
/// (`jobs` <= 0 means one worker per hardware thread). Results are in
/// config order and bitwise-identical for every jobs value (wall-clock
/// fields aside). Configs wiring a serial sink (packet log, trace,
/// profiler) force jobs = 1.
std::vector<ScaleRunResult> run_scale_sweep(std::span<const ScaleConfig> sweep,
                                            int jobs = 1);

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_SCALE_H
