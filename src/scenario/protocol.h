// Routing-protocol selection for scenarios and benches.
#ifndef CAVENET_SCENARIO_PROTOCOL_H
#define CAVENET_SCENARIO_PROTOCOL_H

#include <memory>
#include <string>

#include "netsim/layers.h"
#include "netsim/simulator.h"
#include "routing/aodv.h"
#include "routing/common.h"
#include "routing/dsdv.h"
#include "routing/dymo.h"
#include "routing/olsr.h"

namespace cavenet::scenario {

/// The paper evaluates AODV, OLSR and DYMO; DSDV (the protocol AODV
/// descends from, paper Section III-B2) is included as an extra baseline.
enum class Protocol { kAodv, kOlsr, kDymo, kDsdv };

inline const char* to_string(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kAodv: return "AODV";
    case Protocol::kOlsr: return "OLSR";
    case Protocol::kDymo: return "DYMO";
    case Protocol::kDsdv: return "DSDV";
  }
  return "?";
}

/// Per-protocol tunables, preset to the paper's Table I (hello 1 s for all
/// three, TC 2 s for OLSR).
struct ProtocolOptions {
  routing::aodv::AodvParams aodv;
  routing::olsr::OlsrParams olsr;
  routing::dymo::DymoParams dymo;
  routing::dsdv::DsdvParams dsdv;
};

inline std::unique_ptr<routing::RoutingProtocol> make_protocol(
    netsim::Simulator& sim, netsim::LinkLayer& link, Protocol protocol,
    const ProtocolOptions& options = {}) {
  switch (protocol) {
    case Protocol::kAodv:
      return std::make_unique<routing::aodv::AodvProtocol>(sim, link,
                                                           options.aodv);
    case Protocol::kOlsr:
      return std::make_unique<routing::olsr::OlsrProtocol>(sim, link,
                                                           options.olsr);
    case Protocol::kDymo:
      return std::make_unique<routing::dymo::DymoProtocol>(sim, link,
                                                           options.dymo);
    case Protocol::kDsdv:
      return std::make_unique<routing::dsdv::DsdvProtocol>(sim, link,
                                                           options.dsdv);
  }
  return nullptr;
}

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_PROTOCOL_H
