// Multi-seed experiment runner: repeats a Table-I configuration across
// independent seeds and reports means with confidence intervals, so bench
// results can be quoted as estimates rather than single draws.
#ifndef CAVENET_SCENARIO_EXPERIMENT_H
#define CAVENET_SCENARIO_EXPERIMENT_H

#include <cstdint>
#include <span>
#include <vector>

#include "scenario/table1.h"

namespace cavenet::scenario {

/// Mean, sample standard deviation, and a normal-approximation 95%
/// confidence half-width over the replications.
struct Estimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  std::size_t n = 0;
};

/// Builds an Estimate from raw samples.
Estimate estimate(std::span<const double> samples);

struct SeedSweepResult {
  Estimate pdr;
  Estimate mean_delay_s;
  Estimate control_bytes;
  Estimate first_delivery_delay_s;  ///< over runs that delivered at all
  std::vector<SenderRunResult> runs;
};

/// Runs `config` once per seed (overriding config.seed) and aggregates.
/// `jobs` fans the replications across an EnsembleRunner pool (<= 0 means
/// one worker per hardware thread); every aggregate and the `runs` vector
/// are bitwise-identical for any jobs value. Configs wiring a shared
/// packet_log / trace_sink / profiler run serially (single-writer sinks).
SeedSweepResult run_seed_sweep(TableIConfig config,
                               std::span<const std::uint64_t> seeds,
                               int jobs = 1);

/// Convenience: seeds 1..n.
std::vector<std::uint64_t> default_seeds(std::size_t n);

/// Jain's fairness index over per-flow throughputs: (sum x)^2 / (n sum x^2),
/// 1.0 when all flows get equal service, 1/n when one flow starves the rest.
double jain_fairness(std::span<const double> throughputs);

}  // namespace cavenet::scenario

#endif  // CAVENET_SCENARIO_EXPERIMENT_H
