#include "routing/common.h"

#include <algorithm>

#include "obs/intern.h"

namespace cavenet::routing {

const RouteEntry* RoutingTable::lookup(netsim::NodeId dst, SimTime now) const {
  const auto it = entries_.find(dst);
  if (it == entries_.end()) return nullptr;
  const RouteEntry& e = it->second;
  if (!e.valid || e.expires <= now) return nullptr;
  return &e;
}

RouteEntry* RoutingTable::find(netsim::NodeId dst) {
  const auto it = entries_.find(dst);
  return it == entries_.end() ? nullptr : &it->second;
}

const RouteEntry* RoutingTable::find(netsim::NodeId dst) const {
  const auto it = entries_.find(dst);
  return it == entries_.end() ? nullptr : &it->second;
}

RouteEntry& RoutingTable::upsert(netsim::NodeId dst) { return entries_[dst]; }

void RoutingTable::invalidate(netsim::NodeId dst) {
  const auto it = entries_.find(dst);
  if (it != entries_.end()) it->second.valid = false;
}

bool PacketBuffer::enqueue(netsim::NodeId dst, netsim::Packet packet) {
  auto& q = buffers_[dst];
  if (q.size() >= limit_) return false;
  q.push_back(std::move(packet));
  return true;
}

std::deque<netsim::Packet> PacketBuffer::take(netsim::NodeId dst) {
  const auto it = buffers_.find(dst);
  if (it == buffers_.end()) return {};
  std::deque<netsim::Packet> out = std::move(it->second);
  buffers_.erase(it);
  return out;
}

bool PacketBuffer::has(netsim::NodeId dst) const {
  const auto it = buffers_.find(dst);
  return it != buffers_.end() && !it->second.empty();
}

std::size_t PacketBuffer::size(netsim::NodeId dst) const {
  const auto it = buffers_.find(dst);
  return it == buffers_.end() ? 0 : it->second.size();
}

RoutingProtocol::RoutingProtocol(netsim::Simulator& sim,
                                 netsim::LinkLayer& link, std::string name,
                                 std::uint64_t rng_stream)
    : sim_(&sim),
      link_(&link),
      name_(std::move(name)),
      rng_(sim.make_rng(0x726f757465000000ULL ^ rng_stream ^ link.address())) {
  link_->set_receive_callback(
      [this](netsim::Packet p, netsim::NodeId from) {
        on_link_receive(std::move(p), from);
      });
  link_->set_tx_failed_callback(
      [this](const netsim::Packet& p, netsim::NodeId dest) {
        on_link_tx_failed(p, dest);
      });
}

void RoutingProtocol::bind_stats(obs::StatsRegistry& registry) {
  registry_ = &registry;
  obs_ctl_tx_ = registry.counter("rtr.tx.control");
  obs_fwd_ = registry.counter("rtr.fwd.data");
  obs_delivered_ = registry.counter("agt.rx.delivered");
  obs_ctl_by_type_.clear();
}

obs::Counter& RoutingProtocol::control_type_counter(
    std::string_view header_name) {
  const std::string_view key = obs::intern(header_name);
  const auto it = obs_ctl_by_type_.find(key);
  if (it != obs_ctl_by_type_.end()) return it->second;
  // "aodv-rreq" -> "aodv.rreq.sent"
  std::string metric(key);
  std::replace(metric.begin(), metric.end(), '-', '.');
  metric += ".sent";
  return obs_ctl_by_type_.emplace(key, registry_->counter(metric))
      .first->second;
}

void RoutingProtocol::deliver(netsim::Packet packet, netsim::NodeId source,
                              std::uint32_t hops) {
  ++stats_.data_delivered;
  stats_.delivered_hops_sum += hops;
  obs_delivered_.inc();
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kReceive,
                 netsim::PacketLog::Layer::kAgent, address(), packet.uid(),
                 packet.top_name(), packet.size_bytes());
  }
  if (deliver_cb_) deliver_cb_(std::move(packet), source);
}

void RoutingProtocol::send_control(netsim::Packet packet, netsim::NodeId dest) {
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += packet.size_bytes();
  obs_ctl_tx_.inc();
  if (registry_ != nullptr) control_type_counter(packet.top_name()).inc();
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kSend,
                 netsim::PacketLog::Layer::kRouter, address(), packet.uid(),
                 packet.top_name(), packet.size_bytes());
  }
  // Routing control traffic jumps the interface queue (ns-2 behaviour):
  // a full data backlog must not delay discovery or link sensing.
  link_->send_priority(std::move(packet), dest);
}

void RoutingProtocol::send_data_link(netsim::Packet packet,
                                     netsim::NodeId next_hop) {
  obs_fwd_.inc();
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kForward,
                 netsim::PacketLog::Layer::kRouter, address(), packet.uid(),
                 packet.top_name(), packet.size_bytes());
  }
  link_->send(std::move(packet), next_hop);
}

SimTime RoutingProtocol::jitter(std::int64_t max_ms) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(max_ms) * 1'000'000)));
}

void RoutingProtocol::on_link_tx_failed(const netsim::Packet&, netsim::NodeId) {
  ++stats_.link_failures;
}

}  // namespace cavenet::routing
