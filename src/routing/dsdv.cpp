#include "routing/dsdv.h"

#include <algorithm>
#include <utility>

namespace cavenet::routing::dsdv {

using netsim::kBroadcast;
using netsim::NodeId;
using netsim::Packet;

DsdvProtocol::DsdvProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
                           DsdvParams params)
    : RoutingProtocol(sim, link, "dsdv", 0x64736476), params_(params) {}

void DsdvProtocol::start() {
  sim_->schedule(jitter(), "dsdv", [this] { periodic_update(); });
}

void DsdvProtocol::send(Packet packet, NodeId destination) {
  DataHeader header;
  header.src = address();
  header.dst = destination;
  header.ttl = 32;
  packet.push(header);
  ++stats_.data_originated;
  if (const RouteEntry* route = table_.lookup(destination, sim_->now())) {
    send_data_link(std::move(packet), route->next_hop);
    return;
  }
  // Proactive protocol: no route means drop (like OLSR, unlike AODV/DYMO).
  ++stats_.drops_no_route;
}

void DsdvProtocol::on_link_receive(Packet packet, NodeId from) {
  // Const peeks: reading a broadcast copy must not detach its shared
  // header stack.
  if (const UpdateHeader* update =
          std::as_const(packet).peek<UpdateHeader>()) {
    handle_update(*update, from);
  } else if (std::as_const(packet).peek<DataHeader>() != nullptr) {
    forward_data(std::move(packet), from);
  }
}

void DsdvProtocol::forward_data(Packet packet, NodeId from) {
  (void)from;
  const DataHeader* header = std::as_const(packet).peek<DataHeader>();
  if (header->dst == address()) {
    const DataHeader popped = packet.pop<DataHeader>();
    deliver(std::move(packet), popped.src, popped.hops);
    return;
  }
  if (header->ttl <= 1) {
    ++stats_.drops_ttl;
    return;
  }
  const NodeId dst = header->dst;
  // Forwarding rewrites ttl/hops: only now take a writable header
  // (detaching a stack shared with the other broadcast receivers).
  DataHeader* fwd = packet.peek<DataHeader>();
  --fwd->ttl;
  ++fwd->hops;
  if (const RouteEntry* route = table_.lookup(dst, sim_->now())) {
    ++stats_.data_forwarded;
    send_data_link(std::move(packet), route->next_hop);
    return;
  }
  ++stats_.drops_no_route;
}

void DsdvProtocol::handle_update(const UpdateHeader& update, NodeId from) {
  const SimTime hold =
      params_.update_interval *
      static_cast<std::int64_t>(params_.allowed_update_loss);
  neighbor_expiry_[from] = sim_->now() + hold;

  // The advertising neighbour itself: its own entry is in the list, but
  // guarantee a 1-hop route even for partial dumps.
  bool changed = false;
  auto consider = [&](NodeId dst, std::uint32_t metric, std::uint32_t seqno) {
    if (dst == address()) return;
    RouteEntry& e = table_.upsert(dst);
    const bool newer = static_cast<std::int32_t>(seqno - e.seqno) > 0;
    const bool better = seqno == e.seqno && metric < e.hop_count;
    if (!e.valid || !e.valid_seqno || newer || better) {
      const bool reachable = metric < params_.infinity_metric;
      if (e.valid != reachable || e.next_hop != from ||
          e.hop_count != metric || e.seqno != seqno) {
        changed = true;
        dirty_.push_back(dst);
      }
      e.next_hop = from;
      e.hop_count = metric;
      e.seqno = seqno;
      e.valid_seqno = true;
      e.valid = reachable;
      e.expires = sim_->now() + hold * 2;
    } else if (e.valid && e.next_hop == from && seqno == e.seqno) {
      e.expires = sim_->now() + hold * 2;
    }
  };

  for (const auto& entry : update.entries) {
    const std::uint32_t metric =
        std::min(entry.metric + 1, params_.infinity_metric);
    consider(entry.dst, metric, entry.seqno);
  }
  if (changed) schedule_triggered_update();
}

void DsdvProtocol::periodic_update() {
  // Sweep silent neighbours first.
  std::vector<NodeId> lost;
  for (const auto& [neighbor, expiry] : neighbor_expiry_) {
    if (expiry <= sim_->now()) lost.push_back(neighbor);
  }
  for (const NodeId neighbor : lost) handle_link_failure(neighbor);

  broadcast_table(/*full_dump=*/true);
  sim_->schedule(params_.update_interval + jitter(10), "dsdv",
                 [this] { periodic_update(); });
}

void DsdvProtocol::broadcast_table(bool full_dump) {
  seqno_ += 2;  // even: route is alive
  UpdateHeader update;
  update.origin = address();
  update.entries.push_back({address(), 0, seqno_});
  if (full_dump) {
    for (const auto& [dst, e] : table_.entries()) {
      if (!e.valid_seqno) continue;
      update.entries.push_back(
          {dst, e.valid ? e.hop_count : params_.infinity_metric, e.seqno});
    }
  } else {
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    for (const NodeId dst : dirty_) {
      const RouteEntry* e = table_.find(dst);
      if (e == nullptr || !e->valid_seqno) continue;
      update.entries.push_back(
          {dst, e->valid ? e->hop_count : params_.infinity_metric, e->seqno});
    }
  }
  dirty_.clear();
  last_update_sent_ = sim_->now();
  Packet packet(0);
  packet.push(update);
  send_control(std::move(packet), kBroadcast);
}

void DsdvProtocol::schedule_triggered_update() {
  if (triggered_pending_) return;
  triggered_pending_ = true;
  const SimTime earliest = last_update_sent_ + params_.triggered_update_min_gap;
  const SimTime delay =
      earliest > sim_->now() ? earliest - sim_->now() : SimTime::zero();
  sim_->schedule(delay, "dsdv", [this] {
    triggered_pending_ = false;
    broadcast_table(/*full_dump=*/false);
  });
}

void DsdvProtocol::on_link_tx_failed(const Packet& packet, NodeId dest) {
  RoutingProtocol::on_link_tx_failed(packet, dest);
  handle_link_failure(dest);
}

void DsdvProtocol::handle_link_failure(NodeId neighbor) {
  neighbor_expiry_.erase(neighbor);
  bool changed = false;
  for (auto& [dst, e] : table_.entries()) {
    if (e.valid && e.next_hop == neighbor) {
      e.valid = false;
      e.hop_count = params_.infinity_metric;
      ++e.seqno;  // odd: generated by the breakage detector
      dirty_.push_back(dst);
      changed = true;
    }
  }
  if (changed) schedule_triggered_update();
}

}  // namespace cavenet::routing::dsdv
