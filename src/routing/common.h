// Shared routing infrastructure: network data header, route table,
// pending-packet buffer, stats, and the RoutingProtocol base class that
// AODV, OLSR and DYMO derive from.
#ifndef CAVENET_ROUTING_COMMON_H
#define CAVENET_ROUTING_COMMON_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "netsim/layers.h"
#include "netsim/packet_log.h"
#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "util/rng.h"

namespace cavenet::routing {

/// Network-layer data header (IPv4-sized: 20 bytes).
struct DataHeader final : netsim::HeaderBase<DataHeader> {
  netsim::NodeId src = 0;
  netsim::NodeId dst = 0;
  std::uint8_t ttl = 32;
  /// Hops traversed so far; incremented by every forwarding router.
  std::uint8_t hops = 0;

  std::size_t size_bytes() const override { return 20; }
  std::string_view name() const override { return "data"; }
};

struct RouteEntry {
  netsim::NodeId next_hop = 0;
  std::uint32_t hop_count = 0;
  std::uint32_t seqno = 0;
  bool valid_seqno = false;
  bool valid = false;
  SimTime expires = SimTime::zero();
};

/// Destination-keyed routing table with lifetime-based expiry.
class RoutingTable {
 public:
  /// Entry for `dst` if it exists, is valid and not expired at `now`.
  const RouteEntry* lookup(netsim::NodeId dst, SimTime now) const;
  /// Entry regardless of validity/expiry (for seqno bookkeeping).
  RouteEntry* find(netsim::NodeId dst);
  const RouteEntry* find(netsim::NodeId dst) const;
  /// Inserts or returns the existing entry.
  RouteEntry& upsert(netsim::NodeId dst);
  /// Marks the route invalid (keeps seqno history). No-op if absent.
  void invalidate(netsim::NodeId dst);
  void erase(netsim::NodeId dst) { entries_.erase(dst); }
  void clear() { entries_.clear(); }

  const std::map<netsim::NodeId, RouteEntry>& entries() const {
    return entries_;
  }
  std::map<netsim::NodeId, RouteEntry>& entries() { return entries_; }

 private:
  std::map<netsim::NodeId, RouteEntry> entries_;
};

/// Packets waiting for route discovery, bounded per destination.
class PacketBuffer {
 public:
  explicit PacketBuffer(std::size_t per_destination_limit = 64)
      : limit_(per_destination_limit) {}

  /// Returns false (and drops) when the destination's buffer is full.
  bool enqueue(netsim::NodeId dst, netsim::Packet packet);
  /// Removes and returns every packet buffered for `dst`.
  std::deque<netsim::Packet> take(netsim::NodeId dst);
  bool has(netsim::NodeId dst) const;
  std::size_t size(netsim::NodeId dst) const;

 private:
  std::size_t limit_;
  std::map<netsim::NodeId, std::deque<netsim::Packet>> buffers_;
};

struct RoutingStats {
  std::uint64_t control_packets_sent = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  /// Sum of hop counts over delivered packets (mean = sum / delivered).
  std::uint64_t delivered_hops_sum = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_buffer = 0;
  std::uint64_t route_discoveries = 0;  ///< reactive protocols
  std::uint64_t link_failures = 0;
};

/// Base class wiring a routing protocol onto a link layer.
class RoutingProtocol : public netsim::NetworkLayer {
 public:
  RoutingProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
                  std::string name, std::uint64_t rng_stream);

  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  /// Starts periodic timers (hello/TC). Scenarios call this once at setup;
  /// the first firing is jittered to avoid fleet-wide synchronization.
  virtual void start() = 0;

  void set_deliver_callback(DeliverCallback cb) override {
    deliver_cb_ = std::move(cb);
  }
  netsim::NodeId address() const override { return link_->address(); }

  const RoutingStats& stats() const noexcept { return stats_; }
  const std::string& name() const noexcept { return name_; }

  /// Read-only routing-table view for tests and debugging tools.
  virtual const RoutingTable& table() const = 0;

  /// Attaches an (optional, non-owning) packet event log.
  void set_packet_log(netsim::PacketLog* log) noexcept { log_ = log; }

  /// Binds routing counters into a registry: "rtr.*" and "agt.rx.delivered"
  /// shared across protocols, plus per-message-type control counters
  /// derived from the header name ("aodv-rreq" -> "aodv.rreq.sent").
  void bind_stats(obs::StatsRegistry& registry);

 protected:
  /// Hands a packet to the application layer. `hops` is the traversed
  /// hop count from the popped data header (for path-length statistics).
  void deliver(netsim::Packet packet, netsim::NodeId source,
               std::uint32_t hops = 0);
  /// Sends a control packet on the link, counting overhead.
  void send_control(netsim::Packet packet, netsim::NodeId dest);
  /// Sends a data packet to a next hop (no overhead accounting).
  void send_data_link(netsim::Packet packet, netsim::NodeId next_hop);

  /// Uniform jitter in [0, max_ms) milliseconds, for timer desync.
  SimTime jitter(std::int64_t max_ms = 100);

  virtual void on_link_receive(netsim::Packet packet, netsim::NodeId from) = 0;
  virtual void on_link_tx_failed(const netsim::Packet& packet,
                                 netsim::NodeId dest);

  netsim::Simulator* sim_;
  netsim::LinkLayer* link_;
  std::string name_;
  Rng rng_;
  DeliverCallback deliver_cb_;
  netsim::PacketLog* log_ = nullptr;
  RoutingStats stats_;

 private:
  obs::Counter& control_type_counter(std::string_view header_name);

  obs::StatsRegistry* registry_ = nullptr;
  obs::Counter obs_ctl_tx_;        ///< rtr.tx.control == count(kSend, kRouter)
  obs::Counter obs_fwd_;           ///< rtr.fwd.data == count(kForward, kRouter)
  obs::Counter obs_delivered_;     ///< agt.rx.delivered == count(kReceive, kAgent)
  /// Per-control-type counters keyed by interned header name.
  std::map<std::string_view, obs::Counter> obs_ctl_by_type_;
};

}  // namespace cavenet::routing

#endif  // CAVENET_ROUTING_COMMON_H
