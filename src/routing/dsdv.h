// Destination-Sequenced Distance Vector routing (Perkins & Bhagwat).
//
// The paper introduces AODV as "an improvement of DSDV to on-demand
// scheme" (Section III-B2); DSDV is therefore the natural proactive
// distance-vector baseline to compare the paper's three protocols against.
//
// Implemented: periodic full-table dumps, triggered incremental updates,
// even own-sequence numbers (bumped per advertisement), odd sequence
// numbers for broken routes, newest-sequence/shortest-metric selection,
// neighbour timeout and MAC-feedback link-failure detection.
#ifndef CAVENET_ROUTING_DSDV_H
#define CAVENET_ROUTING_DSDV_H

#include <cstdint>
#include <map>
#include <vector>

#include "routing/common.h"

namespace cavenet::routing::dsdv {

struct DsdvParams {
  /// Full-dump broadcast period.
  SimTime update_interval = SimTime::seconds(2);
  /// Updates missed before a neighbour is declared lost.
  std::uint32_t allowed_update_loss = 3;
  /// Minimum spacing between triggered updates (damping).
  SimTime triggered_update_min_gap = SimTime::milliseconds(250);
  /// Metric value representing an unreachable destination.
  std::uint32_t infinity_metric = 16;
};

struct UpdateHeader final : netsim::HeaderBase<UpdateHeader> {
  struct Entry {
    netsim::NodeId dst = 0;
    std::uint32_t metric = 0;
    std::uint32_t seqno = 0;
  };
  netsim::NodeId origin = 0;
  std::vector<Entry> entries;

  std::size_t size_bytes() const override { return 8 + 12 * entries.size(); }
  std::string_view name() const override { return "dsdv-update"; }
};

class DsdvProtocol final : public RoutingProtocol {
 public:
  DsdvProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
               DsdvParams params = {});

  void start() override;
  void send(netsim::Packet packet, netsim::NodeId destination) override;
  const RoutingTable& table() const override { return table_; }

  const DsdvParams& params() const noexcept { return params_; }
  std::uint32_t seqno() const noexcept { return seqno_; }

 private:
  void on_link_receive(netsim::Packet packet, netsim::NodeId from) override;
  void on_link_tx_failed(const netsim::Packet& packet,
                         netsim::NodeId dest) override;

  void forward_data(netsim::Packet packet, netsim::NodeId from);
  void handle_update(const UpdateHeader& update, netsim::NodeId from);
  void periodic_update();
  void broadcast_table(bool full_dump);
  void schedule_triggered_update();
  void handle_link_failure(netsim::NodeId neighbor);

  DsdvParams params_;
  RoutingTable table_;
  std::uint32_t seqno_ = 0;  ///< own destination-sequence number (even)
  std::map<netsim::NodeId, SimTime> neighbor_expiry_;
  /// Destinations whose entries changed since the last advertisement.
  std::vector<netsim::NodeId> dirty_;
  bool triggered_pending_ = false;
  SimTime last_update_sent_ = SimTime::zero();
};

}  // namespace cavenet::routing::dsdv

#endif  // CAVENET_ROUTING_DSDV_H
