// Optimized Link State Routing (RFC 3626), as evaluated by the paper's
// Table-I scenario (HELLO 1 s, TC 2 s).
//
// Implemented: HELLO link sensing (asym -> sym handshake), 2-hop
// neighbourhood, greedy MPR selection, MPR-selector tracking, TC
// origination and MPR-rule flooding with duplicate suppression, topology
// set with hold times, and shortest-path route calculation. The olsrd LQ
// (ETX) extension from paper Section III-B1 is available behind
// `use_etx`: link quality is the hello arrival rate per window, ETX(i) =
// 1 / (NI(i) * LQI(i)), and routes minimize total ETX instead of hops.
#ifndef CAVENET_ROUTING_OLSR_H
#define CAVENET_ROUTING_OLSR_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "routing/common.h"

namespace cavenet::routing::olsr {

struct OlsrParams {
  SimTime hello_interval = SimTime::seconds(1);
  SimTime tc_interval = SimTime::seconds(2);
  /// Hold times default to 3x the emission interval (RFC 3626 defaults).
  SimTime neighbor_hold() const noexcept { return hello_interval * 3; }
  SimTime topology_hold() const noexcept { return tc_interval * 3; }
  SimTime duplicate_hold = SimTime::seconds(30);
  /// Enables the olsrd Link-Quality/ETX extension.
  bool use_etx = false;
  /// Hello sampling window W (in hello intervals) for the ETX estimate.
  std::uint32_t etx_window = 10;
  /// HNA emission period (RFC 3626 section 12; paper Section III-B1:
  /// "HNA messages are used by OLSR to disseminate network route
  /// advertisements in the same way TC messages advertise host routes").
  SimTime hna_interval = SimTime::seconds(5);
  SimTime hna_hold() const noexcept { return hna_interval * 3; }
};

enum class LinkCode : std::uint8_t { kAsym = 0, kSym = 1, kMpr = 2 };

struct HelloHeader final : netsim::HeaderBase<HelloHeader> {
  struct NeighborEntry {
    netsim::NodeId addr = 0;
    LinkCode code = LinkCode::kAsym;
    /// LQ extension: our measured hello arrival rate from this neighbour,
    /// scaled to 0..255.
    std::uint8_t link_quality = 0;
  };
  netsim::NodeId origin = 0;
  std::vector<NeighborEntry> neighbors;

  std::size_t size_bytes() const override {
    return 16 + 8 * neighbors.size();
  }
  std::string_view name() const override { return "olsr-hello"; }
};

/// Host and Network Association message: a gateway advertises reachability
/// of non-MANET addresses (e.g. an Internet uplink) through itself.
struct HnaHeader final : netsim::HeaderBase<HnaHeader> {
  netsim::NodeId origin = 0;
  std::uint16_t message_seq = 0;
  std::uint8_t ttl = 255;
  std::vector<netsim::NodeId> networks;

  std::size_t size_bytes() const override { return 12 + 8 * networks.size(); }
  std::string_view name() const override { return "olsr-hna"; }
};

struct TcHeader final : netsim::HeaderBase<TcHeader> {
  netsim::NodeId origin = 0;
  std::uint16_t message_seq = 0;
  std::uint16_t ansn = 0;
  std::uint8_t ttl = 255;
  struct Advertised {
    netsim::NodeId addr = 0;
    std::uint8_t link_quality = 0;  ///< LQ extension
  };
  std::vector<Advertised> advertised;  ///< MPR selectors of the origin

  std::size_t size_bytes() const override {
    return 16 + 8 * advertised.size();
  }
  std::string_view name() const override { return "olsr-tc"; }
};

class OlsrProtocol final : public RoutingProtocol {
 public:
  OlsrProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
               OlsrParams params = {});

  void start() override;
  void send(netsim::Packet packet, netsim::NodeId destination) override;
  const RoutingTable& table() const override { return table_; }

  const OlsrParams& params() const noexcept { return params_; }
  /// Current MPR set (for tests and the MPR ablation bench).
  const std::set<netsim::NodeId>& mpr_set() const noexcept { return mprs_; }
  /// Symmetric one-hop neighbours.
  std::vector<netsim::NodeId> symmetric_neighbors() const;
  /// ETX of the link to `neighbor` (1.0 with perfect delivery; +inf when
  /// no hello has been heard). Only meaningful with use_etx.
  double link_etx(netsim::NodeId neighbor) const;

  /// Declares this node a gateway for `network` (a non-MANET address);
  /// it will advertise the association via periodic HNA floods.
  void add_local_network(netsim::NodeId network);
  /// Gateway currently associated with `network`, if any (for tests).
  std::optional<netsim::NodeId> gateway_for(netsim::NodeId network) const;

 private:
  struct LinkTuple {
    SimTime sym_until = SimTime::zero();
    SimTime asym_until = SimTime::zero();
    /// Hellos heard in the current ETX window and the frozen last-window
    /// arrival ratios.
    std::uint32_t hellos_in_window = 0;
    double ni = 0.0;   ///< our arrival rate for their hellos
    double lqi = 0.0;  ///< their reported arrival rate for our hellos
  };
  struct TwoHopTuple {
    netsim::NodeId neighbor;
    netsim::NodeId two_hop;
    SimTime expires;
  };
  struct TopologyTuple {
    netsim::NodeId dest;
    netsim::NodeId last_hop;
    std::uint16_t ansn;
    SimTime expires;
    double quality = 1.0;  ///< LQ extension: dest->last_hop link quality
  };

  void on_link_receive(netsim::Packet packet, netsim::NodeId from) override;

  void hello_timer();
  void tc_timer();
  void hna_timer();
  void etx_window_rollover();
  void handle_hello(const HelloHeader& hello, netsim::NodeId from);
  void handle_tc(netsim::Packet packet, const TcHeader& tc,
                 netsim::NodeId from);
  void handle_hna(const HnaHeader& hna, netsim::NodeId from);
  void forward_data(netsim::Packet packet, netsim::NodeId from);
  void expire_state();
  bool link_is_sym(netsim::NodeId neighbor) const;
  void select_mprs();
  void compute_routes();
  /// Route to `dst`, falling back to the best HNA gateway.
  const RouteEntry* resolve(netsim::NodeId dst) const;

  OlsrParams params_;
  RoutingTable table_;
  std::map<netsim::NodeId, LinkTuple> links_;
  std::vector<TwoHopTuple> two_hop_;
  std::set<netsim::NodeId> mprs_;
  std::map<netsim::NodeId, SimTime> mpr_selectors_;
  std::vector<TopologyTuple> topology_;
  struct HnaTuple {
    netsim::NodeId network;
    netsim::NodeId gateway;
    SimTime expires;
  };
  std::vector<HnaTuple> hna_associations_;
  std::vector<netsim::NodeId> local_networks_;
  std::map<std::pair<netsim::NodeId, std::uint16_t>, SimTime> duplicates_;
  std::uint16_t ansn_ = 0;
  std::uint16_t message_seq_ = 0;
  std::uint32_t hello_ticks_ = 0;
};

}  // namespace cavenet::routing::olsr

#endif  // CAVENET_ROUTING_OLSR_H
