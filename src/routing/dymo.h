// Dynamic MANET On-demand routing (draft-ietf-manet-dymo-14), as evaluated
// by the paper's Table-I scenario (hello interval 1 s).
//
// The two DYMO behaviours the paper singles out are implemented faithfully:
//  * path accumulation — RREQ/RREP carry an address block per traversed
//    router, so every node processing the message learns routes to ALL
//    intermediate hops, not just the target and next hop (unlike AODV);
//  * RERR flooding — link-breakage notifications are multicast to all
//    nodes in range and re-flooded by every node whose routes they
//    invalidate.
// DYMO floods RREQs directly (no expanding-ring search), which is why its
// route-acquisition delay is lower than AODV's in the paper's comparison.
#ifndef CAVENET_ROUTING_DYMO_H
#define CAVENET_ROUTING_DYMO_H

#include <cstdint>
#include <map>
#include <vector>

#include "routing/common.h"

namespace cavenet::routing::dymo {

struct DymoParams {
  SimTime hello_interval = SimTime::seconds(1);
  std::uint32_t allowed_hello_loss = 2;
  SimTime route_timeout = SimTime::seconds(5);
  SimTime rreq_wait_time = SimTime::seconds(1);
  std::uint32_t rreq_tries = 3;
  std::uint8_t msg_hop_limit = 20;
  std::size_t buffer_per_destination = 64;
  /// Intermediate routers with a fresh route to the target may answer the
  /// RREQ themselves (draft appendix; mirrors AODV's intermediate RREP).
  bool intermediate_rrep = true;
};

/// One accumulated router entry in a routing message. `hop_count` is the
/// distance from that router to the node currently transmitting the
/// message; each forwarding router increments every entry before adding
/// itself with hop_count 0.
struct AddressBlock {
  netsim::NodeId addr = 0;
  std::uint32_t seqno = 0;
  std::uint8_t hop_count = 0;
};

/// Common shape of DYMO routing messages (generic packetbb-style message:
/// 16-byte fixed part + 8 bytes per accumulated address).
struct RoutingMessageHeader : netsim::Header {
  netsim::NodeId target = 0;
  std::uint32_t target_seqno = 0;
  bool target_seqno_known = false;
  std::uint8_t hop_limit = 0;
  std::vector<AddressBlock> path;  ///< front() is the message originator

  std::size_t size_bytes() const override { return 16 + 8 * path.size(); }
};

struct RreqHeader final : RoutingMessageHeader {
  std::unique_ptr<netsim::Header> clone() const override {
    return std::make_unique<RreqHeader>(*this);
  }
  std::string_view name() const override { return "dymo-rreq"; }
};

struct RrepHeader final : RoutingMessageHeader {
  std::unique_ptr<netsim::Header> clone() const override {
    return std::make_unique<RrepHeader>(*this);
  }
  std::string_view name() const override { return "dymo-rrep"; }
};

struct RerrHeader final : netsim::HeaderBase<RerrHeader> {
  struct Unreachable {
    netsim::NodeId addr;
    std::uint32_t seqno;
  };
  std::vector<Unreachable> unreachable;
  std::uint8_t hop_limit = 0;

  std::size_t size_bytes() const override {
    return 4 + 8 * unreachable.size();
  }
  std::string_view name() const override { return "dymo-rerr"; }
};

struct HelloHeader final : netsim::HeaderBase<HelloHeader> {
  netsim::NodeId origin = 0;
  std::uint32_t seqno = 0;

  std::size_t size_bytes() const override { return 12; }
  std::string_view name() const override { return "dymo-hello"; }
};

class DymoProtocol final : public RoutingProtocol {
 public:
  DymoProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
               DymoParams params = {});

  void start() override;
  void send(netsim::Packet packet, netsim::NodeId destination) override;
  const RoutingTable& table() const override { return table_; }

  const DymoParams& params() const noexcept { return params_; }
  std::uint32_t seqno() const noexcept { return seqno_; }

 private:
  struct Discovery {
    std::uint32_t tries = 0;
    netsim::EventId timeout;
  };

  void on_link_receive(netsim::Packet packet, netsim::NodeId from) override;
  void on_link_tx_failed(const netsim::Packet& packet,
                         netsim::NodeId dest) override;

  void route_output(netsim::Packet packet);
  void forward_data(netsim::Packet packet, netsim::NodeId from);
  void start_discovery(netsim::NodeId dst);
  void send_rreq(netsim::NodeId dst);
  void discovery_timeout(netsim::NodeId dst);
  /// Learns routes from an accumulated path; returns true if any route to
  /// the message originator was created or improved (loop/staleness guard).
  bool process_path(const std::vector<AddressBlock>& path, netsim::NodeId from);
  void handle_rreq(netsim::Packet packet, netsim::NodeId from);
  void handle_rrep(netsim::Packet packet, netsim::NodeId from);
  void handle_rerr(netsim::Packet packet, netsim::NodeId from);
  void hello_timer();
  void refresh_neighbor(netsim::NodeId neighbor);
  void handle_link_failure(netsim::NodeId neighbor);
  bool update_route(netsim::NodeId dst, netsim::NodeId next_hop,
                    std::uint32_t hop_count, std::uint32_t seqno,
                    bool seqno_known);
  void flush_buffer(netsim::NodeId dst);
  void append_self(RoutingMessageHeader& message);

  DymoParams params_;
  RoutingTable table_;
  PacketBuffer buffer_;
  std::uint32_t seqno_ = 0;
  /// RREQ duplicate suppression: highest origin seqno seen per originator.
  std::map<netsim::NodeId, std::uint32_t> rreq_seen_;
  std::map<netsim::NodeId, SimTime> neighbor_expiry_;
  std::map<netsim::NodeId, Discovery> discoveries_;
};

}  // namespace cavenet::routing::dymo

#endif  // CAVENET_ROUTING_DYMO_H
