#include "routing/dymo.h"

#include <algorithm>
#include <utility>

namespace cavenet::routing::dymo {

using netsim::kBroadcast;
using netsim::NodeId;
using netsim::Packet;

DymoProtocol::DymoProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
                           DymoParams params)
    : RoutingProtocol(sim, link, "dymo", 0x64796d6f),
      params_(params),
      buffer_(params.buffer_per_destination) {}

void DymoProtocol::start() {
  sim_->schedule(jitter(), "dymo", [this] { hello_timer(); });
}

void DymoProtocol::send(Packet packet, NodeId destination) {
  DataHeader header;
  header.src = address();
  header.dst = destination;
  header.ttl = 32;
  packet.push(header);
  ++stats_.data_originated;
  route_output(std::move(packet));
}

void DymoProtocol::route_output(Packet packet) {
  const NodeId dst = std::as_const(packet).peek<DataHeader>()->dst;
  if (const RouteEntry* route = table_.lookup(dst, sim_->now())) {
    const NodeId next_hop = route->next_hop;
    // ROUTE_USED: refresh the lifetime of routes carrying traffic.
    if (RouteEntry* e = table_.find(dst)) {
      e->expires = std::max(e->expires, sim_->now() + params_.route_timeout);
    }
    send_data_link(std::move(packet), next_hop);
    return;
  }
  if (!buffer_.enqueue(dst, std::move(packet))) {
    ++stats_.drops_buffer;
  }
  if (!discoveries_.contains(dst)) start_discovery(dst);
}

void DymoProtocol::start_discovery(NodeId dst) {
  ++stats_.route_discoveries;
  discoveries_[dst] = Discovery{};
  send_rreq(dst);
}

void DymoProtocol::send_rreq(NodeId dst) {
  auto& d = discoveries_.at(dst);
  ++seqno_;

  RreqHeader rreq;
  rreq.target = dst;
  if (const RouteEntry* stale = table_.find(dst); stale && stale->valid_seqno) {
    rreq.target_seqno = stale->seqno;
    rreq.target_seqno_known = true;
  }
  rreq.hop_limit = params_.msg_hop_limit;
  rreq.path.push_back({address(), seqno_, 0});

  Packet packet(0);
  packet.push(rreq);
  send_control(std::move(packet), kBroadcast);

  // Exponential backoff between tries (draft section 5.4).
  const SimTime wait =
      params_.rreq_wait_time * (std::int64_t{1} << d.tries);
  d.timeout.cancel();
  d.timeout =
      sim_->schedule(wait, "dymo", [this, dst] { discovery_timeout(dst); });
}

void DymoProtocol::discovery_timeout(NodeId dst) {
  const auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  Discovery& d = it->second;
  ++d.tries;
  if (d.tries < params_.rreq_tries) {
    send_rreq(dst);
    return;
  }
  discoveries_.erase(it);
  auto pending = buffer_.take(dst);
  stats_.drops_no_route += pending.size();
}

bool DymoProtocol::update_route(NodeId dst, NodeId next_hop,
                                std::uint32_t hop_count, std::uint32_t seqno,
                                bool seqno_known) {
  if (dst == address()) return false;
  RouteEntry& e = table_.upsert(dst);
  const bool improved =
      !e.valid ||
      (seqno_known &&
       (!e.valid_seqno || static_cast<std::int32_t>(seqno - e.seqno) > 0 ||
        (seqno == e.seqno && hop_count < e.hop_count))) ||
      (!seqno_known && !e.valid_seqno && hop_count <= e.hop_count);
  if (!improved) {
    if (e.valid && e.next_hop == next_hop) {
      e.expires = std::max(e.expires, sim_->now() + params_.route_timeout);
    }
    return false;
  }
  e.next_hop = next_hop;
  e.hop_count = hop_count;
  if (seqno_known) {
    e.seqno = seqno;
    e.valid_seqno = true;
  }
  e.valid = true;
  e.expires = std::max(e.expires, sim_->now() + params_.route_timeout);
  return true;
}

bool DymoProtocol::process_path(const std::vector<AddressBlock>& path,
                                NodeId from) {
  // Path accumulation payoff: a route to EVERY router listed in the
  // message, all through the link-level sender.
  bool origin_improved = false;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const AddressBlock& entry = path[i];
    const bool improved =
        update_route(entry.addr, from, entry.hop_count + 1u, entry.seqno,
                     /*seqno_known=*/true);
    if (i == 0) origin_improved = improved;
  }
  return origin_improved;
}

void DymoProtocol::append_self(RoutingMessageHeader& message) {
  for (AddressBlock& entry : message.path) ++entry.hop_count;
  message.path.push_back({address(), seqno_, 0});
}

void DymoProtocol::on_link_receive(Packet packet, NodeId from) {
  // Const peeks: reading a broadcast copy must not detach its shared
  // header stack.
  if (std::as_const(packet).peek<RreqHeader>() != nullptr) {
    handle_rreq(std::move(packet), from);
  } else if (std::as_const(packet).peek<RrepHeader>() != nullptr) {
    handle_rrep(std::move(packet), from);
  } else if (std::as_const(packet).peek<RerrHeader>() != nullptr) {
    handle_rerr(std::move(packet), from);
  } else if (const HelloHeader* hello =
                 std::as_const(packet).peek<HelloHeader>()) {
    refresh_neighbor(from);
    update_route(hello->origin, from, 1, hello->seqno, true);
  } else if (std::as_const(packet).peek<DataHeader>() != nullptr) {
    forward_data(std::move(packet), from);
  }
}

void DymoProtocol::forward_data(Packet packet, NodeId from) {
  refresh_neighbor(from);
  const DataHeader* header = std::as_const(packet).peek<DataHeader>();
  if (header->dst == address()) {
    const DataHeader popped = packet.pop<DataHeader>();
    deliver(std::move(packet), popped.src, popped.hops);
    return;
  }
  if (header->ttl <= 1) {
    ++stats_.drops_ttl;
    return;
  }
  const NodeId dst = header->dst;
  // Forwarding rewrites ttl/hops: only now take a writable header
  // (detaching a stack shared with the other broadcast receivers).
  DataHeader* fwd = packet.peek<DataHeader>();
  --fwd->ttl;
  ++fwd->hops;
  if (const RouteEntry* route = table_.lookup(dst, sim_->now())) {
    ++stats_.data_forwarded;
    if (RouteEntry* e = table_.find(dst)) {
      e->expires = std::max(e->expires, sim_->now() + params_.route_timeout);
    }
    send_data_link(std::move(packet), route->next_hop);
    return;
  }
  ++stats_.drops_no_route;
  RerrHeader rerr;
  std::uint32_t seqno = 0;
  if (const RouteEntry* stale = table_.find(dst)) seqno = stale->seqno;
  rerr.unreachable.push_back({dst, seqno});
  rerr.hop_limit = params_.msg_hop_limit;
  Packet out(0);
  out.push(rerr);
  send_control(std::move(out), kBroadcast);
}

void DymoProtocol::handle_rreq(Packet packet, NodeId from) {
  RreqHeader rreq = packet.pop<RreqHeader>();
  refresh_neighbor(from);
  if (rreq.path.empty()) return;

  const AddressBlock origin = rreq.path.front();
  if (origin.addr == address()) return;  // our own flood echoed back

  // Duplicate suppression by originator sequence number.
  if (const auto it = rreq_seen_.find(origin.addr);
      it != rreq_seen_.end() &&
      static_cast<std::int32_t>(origin.seqno - it->second) <= 0) {
    return;
  }
  rreq_seen_[origin.addr] = origin.seqno;

  process_path(rreq.path, from);

  if (rreq.target == address()) {
    // Target: answer with an RREP accumulated back along the path.
    if (rreq.target_seqno_known &&
        static_cast<std::int32_t>(rreq.target_seqno - seqno_) > 0) {
      seqno_ = rreq.target_seqno;
    }
    ++seqno_;
    RrepHeader rrep;
    rrep.target = origin.addr;
    rrep.hop_limit = params_.msg_hop_limit;
    rrep.path.push_back({address(), seqno_, 0});
    Packet out(0);
    out.push(rrep);
    send_control(std::move(out), from);
    return;
  }

  if (params_.intermediate_rrep) {
    if (const RouteEntry* route = table_.lookup(rreq.target, sim_->now());
        route && route->valid_seqno && rreq.target_seqno_known &&
        static_cast<std::int32_t>(route->seqno - rreq.target_seqno) >= 0) {
      RrepHeader rrep;
      rrep.target = origin.addr;
      rrep.hop_limit = params_.msg_hop_limit;
      // Answer on the target's behalf with our cached distance.
      rrep.path.push_back(
          {rreq.target, route->seqno,
           static_cast<std::uint8_t>(route->hop_count)});
      append_self(rrep);
      Packet out(0);
      out.push(rrep);
      send_control(std::move(out), from);
      return;
    }
  }

  if (rreq.hop_limit <= 1) return;
  --rreq.hop_limit;
  append_self(rreq);
  Packet out(0);
  out.push(rreq);
  send_control(std::move(out), kBroadcast);
}

void DymoProtocol::handle_rrep(Packet packet, NodeId from) {
  RrepHeader rrep = packet.pop<RrepHeader>();
  refresh_neighbor(from);
  if (rrep.path.empty()) return;

  process_path(rrep.path, from);
  const NodeId learned = rrep.path.front().addr;

  if (rrep.target == address()) {
    if (const auto it = discoveries_.find(learned); it != discoveries_.end()) {
      it->second.timeout.cancel();
      discoveries_.erase(it);
    }
    flush_buffer(learned);
    return;
  }
  if (rrep.hop_limit <= 1) return;
  --rrep.hop_limit;
  if (const RouteEntry* route = table_.lookup(rrep.target, sim_->now())) {
    append_self(rrep);
    Packet out(0);
    out.push(rrep);
    send_control(std::move(out), route->next_hop);
  }
}

void DymoProtocol::handle_rerr(Packet packet, NodeId from) {
  RerrHeader rerr = packet.pop<RerrHeader>();
  RerrHeader forward;
  for (const auto& u : rerr.unreachable) {
    RouteEntry* e = table_.find(u.addr);
    if (e != nullptr && e->valid && e->next_hop == from) {
      e->valid = false;
      e->seqno = std::max(e->seqno, u.seqno);
      forward.unreachable.push_back({u.addr, e->seqno});
    }
  }
  // Flooding: every router whose routes the RERR invalidated re-multicasts
  // it (the paper's "effectively flooding information about a link
  // breakage through the MANET").
  if (!forward.unreachable.empty() && rerr.hop_limit > 1) {
    forward.hop_limit = rerr.hop_limit - 1u;
    Packet out(0);
    out.push(forward);
    send_control(std::move(out), kBroadcast);
  }
}

void DymoProtocol::hello_timer() {
  HelloHeader hello;
  hello.origin = address();
  hello.seqno = seqno_;
  Packet packet(0);
  packet.push(hello);
  send_control(std::move(packet), kBroadcast);

  std::vector<NodeId> lost;
  for (const auto& [neighbor, expiry] : neighbor_expiry_) {
    if (expiry <= sim_->now()) lost.push_back(neighbor);
  }
  for (const NodeId neighbor : lost) handle_link_failure(neighbor);

  sim_->schedule(params_.hello_interval + jitter(10), "dymo",
                 [this] { hello_timer(); });
}

void DymoProtocol::refresh_neighbor(NodeId neighbor) {
  neighbor_expiry_[neighbor] =
      sim_->now() + params_.hello_interval *
                        static_cast<std::int64_t>(params_.allowed_hello_loss);
  update_route(neighbor, neighbor, 1, 0, false);
}

void DymoProtocol::on_link_tx_failed(const Packet& packet, NodeId dest) {
  RoutingProtocol::on_link_tx_failed(packet, dest);
  handle_link_failure(dest);
}

void DymoProtocol::handle_link_failure(NodeId neighbor) {
  neighbor_expiry_.erase(neighbor);
  RerrHeader rerr;
  for (auto& [dst, e] : table_.entries()) {
    if (e.valid && e.next_hop == neighbor) {
      e.valid = false;
      rerr.unreachable.push_back({dst, e.seqno});
    }
  }
  if (!rerr.unreachable.empty()) {
    rerr.hop_limit = params_.msg_hop_limit;
    Packet out(0);
    out.push(rerr);
    send_control(std::move(out), kBroadcast);
  }
}

void DymoProtocol::flush_buffer(NodeId dst) {
  auto pending = buffer_.take(dst);
  for (auto& packet : pending) route_output(std::move(packet));
}

}  // namespace cavenet::routing::dymo
