#include "routing/aodv.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace cavenet::routing::aodv {

using netsim::kBroadcast;
using netsim::NodeId;
using netsim::Packet;

AodvProtocol::AodvProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
                           AodvParams params)
    : RoutingProtocol(sim, link, "aodv", 0x616f6476),
      params_(params),
      buffer_(params.buffer_per_destination) {}

void AodvProtocol::start() {
  sim_->schedule(jitter(), "aodv", [this] { hello_timer(); });
}

void AodvProtocol::send(Packet packet, NodeId destination) {
  DataHeader header;
  header.src = address();
  header.dst = destination;
  header.ttl = 32;
  packet.push(header);
  ++stats_.data_originated;
  route_output(std::move(packet));
}

void AodvProtocol::route_output(Packet packet) {
  const DataHeader* header = std::as_const(packet).peek<DataHeader>();
  const NodeId dst = header->dst;
  if (const RouteEntry* route = table_.lookup(dst, sim_->now())) {
    const NodeId next_hop = route->next_hop;
    refresh_route_lifetime(dst, params_.active_route_timeout);
    refresh_route_lifetime(next_hop, params_.active_route_timeout);
    send_data_link(std::move(packet), next_hop);
    return;
  }
  if (!buffer_.enqueue(dst, std::move(packet))) {
    ++stats_.drops_buffer;
  }
  if (!discoveries_.contains(dst)) start_discovery(dst);
}

void AodvProtocol::start_discovery(NodeId dst) {
  ++stats_.route_discoveries;
  Discovery d;
  d.retries = 0;
  d.ttl = params_.ttl_start;
  discoveries_[dst] = std::move(d);
  send_rreq(dst);
}

void AodvProtocol::send_rreq(NodeId dst) {
  auto& d = discoveries_.at(dst);
  ++seqno_;  // RFC 6.1: increment own seqno before originating an RREQ
  ++rreq_id_;

  RreqHeader rreq;
  rreq.rreq_id = rreq_id_;
  rreq.dst = dst;
  if (const RouteEntry* stale = table_.find(dst); stale && stale->valid_seqno) {
    rreq.dst_seqno = stale->seqno;
    rreq.dst_seqno_known = true;
  }
  rreq.origin = address();
  rreq.origin_seqno = seqno_;
  rreq.hop_count = 0;
  rreq.ttl = static_cast<std::uint8_t>(d.ttl);

  rreq_seen_[{address(), rreq_id_}] =
      sim_->now() + params_.ring_traversal_time(params_.net_diameter);

  Packet packet(0);
  packet.push(rreq);
  send_control(std::move(packet), kBroadcast);

  d.timeout.cancel();
  d.timeout = sim_->schedule(params_.ring_traversal_time(d.ttl), "aodv",
                             [this, dst] { discovery_timeout(dst); });
}

void AodvProtocol::discovery_timeout(NodeId dst) {
  const auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  Discovery& d = it->second;
  // Widen the ring; past the threshold, flood the whole network.
  if (d.ttl < params_.ttl_threshold) {
    d.ttl = std::min(d.ttl + params_.ttl_increment, params_.ttl_threshold);
    send_rreq(dst);
    return;
  }
  if (d.ttl < params_.net_diameter) {
    d.ttl = params_.net_diameter;
    send_rreq(dst);
    return;
  }
  ++d.retries;
  if (d.retries <= params_.rreq_retries) {
    send_rreq(dst);
    return;
  }
  // Give up: destination unreachable.
  discoveries_.erase(it);
  auto pending = buffer_.take(dst);
  stats_.drops_no_route += pending.size();
}

void AodvProtocol::hello_timer() {
  HelloHeader hello;
  hello.origin = address();
  hello.seqno = seqno_;
  Packet packet(0);
  packet.push(hello);
  send_control(std::move(packet), kBroadcast);

  // Sweep silent neighbours.
  std::vector<NodeId> lost;
  for (const auto& [neighbor, expiry] : neighbor_expiry_) {
    if (expiry <= sim_->now()) lost.push_back(neighbor);
  }
  for (const NodeId neighbor : lost) handle_link_failure(neighbor);

  // Expire the RREQ-seen cache.
  std::erase_if(rreq_seen_,
                [now = sim_->now()](const auto& kv) { return kv.second <= now; });

  sim_->schedule(params_.hello_interval + jitter(10), "aodv",
                 [this] { hello_timer(); });
}

void AodvProtocol::refresh_neighbor(NodeId neighbor) {
  neighbor_expiry_[neighbor] =
      sim_->now() + params_.hello_interval *
                        static_cast<std::int64_t>(params_.allowed_hello_loss);
  update_route(neighbor, neighbor, 1, 0, false,
               params_.hello_interval *
                   static_cast<std::int64_t>(params_.allowed_hello_loss));
}

void AodvProtocol::update_route(NodeId dst, NodeId next_hop,
                                std::uint32_t hop_count, std::uint32_t seqno,
                                bool seqno_known, SimTime lifetime) {
  RouteEntry& e = table_.upsert(dst);
  const SimTime expires = sim_->now() + lifetime;
  const bool fresher =
      !e.valid ||
      (seqno_known &&
       (!e.valid_seqno ||
        static_cast<std::int32_t>(seqno - e.seqno) > 0 ||
        (seqno == e.seqno && hop_count < e.hop_count))) ||
      (!seqno_known && !e.valid_seqno && hop_count <= e.hop_count);
  if (fresher) {
    e.next_hop = next_hop;
    e.hop_count = hop_count;
    if (seqno_known) {
      e.seqno = seqno;
      e.valid_seqno = true;
    }
    e.valid = true;
    e.expires = std::max(e.expires, expires);
  } else if (e.valid && e.next_hop == next_hop) {
    e.expires = std::max(e.expires, expires);
  }
}

void AodvProtocol::refresh_route_lifetime(NodeId dst, SimTime lifetime) {
  if (RouteEntry* e = table_.find(dst); e && e->valid) {
    e->expires = std::max(e->expires, sim_->now() + lifetime);
  }
}

void AodvProtocol::flush_buffer(NodeId dst) {
  auto pending = buffer_.take(dst);
  for (auto& packet : pending) route_output(std::move(packet));
}

void AodvProtocol::on_link_receive(Packet packet, NodeId from) {
  // Const peeks: reading a broadcast copy must not detach its shared
  // header stack.
  if (std::as_const(packet).peek<RreqHeader>() != nullptr) {
    handle_rreq(std::move(packet), from);
  } else if (std::as_const(packet).peek<RrepHeader>() != nullptr) {
    handle_rrep(std::move(packet), from);
  } else if (std::as_const(packet).peek<RerrHeader>() != nullptr) {
    handle_rerr(std::move(packet), from);
  } else if (const HelloHeader* hello =
                 std::as_const(packet).peek<HelloHeader>()) {
    handle_hello(*hello, from);
  } else if (std::as_const(packet).peek<DataHeader>() != nullptr) {
    forward_data(std::move(packet), from);
  }
}

void AodvProtocol::forward_data(Packet packet, NodeId from) {
  refresh_neighbor(from);
  const DataHeader* header = std::as_const(packet).peek<DataHeader>();
  if (header->dst == address()) {
    const DataHeader popped = packet.pop<DataHeader>();
    deliver(std::move(packet), popped.src, popped.hops);
    return;
  }
  if (header->ttl <= 1) {
    ++stats_.drops_ttl;
    return;
  }
  const NodeId dst = header->dst;
  const NodeId src = header->src;
  // Forwarding rewrites ttl/hops: only now take a writable header
  // (detaching a stack shared with the other broadcast receivers).
  DataHeader* fwd = packet.peek<DataHeader>();
  --fwd->ttl;
  ++fwd->hops;
  if (const RouteEntry* route = table_.lookup(dst, sim_->now())) {
    ++stats_.data_forwarded;
    const NodeId next_hop = route->next_hop;
    refresh_route_lifetime(dst, params_.active_route_timeout);
    refresh_route_lifetime(next_hop, params_.active_route_timeout);
    refresh_route_lifetime(src, params_.active_route_timeout);
    send_data_link(std::move(packet), next_hop);
    return;
  }
  // RFC 6.11 case (ii): data for a destination we cannot reach — RERR.
  ++stats_.drops_no_route;
  RerrHeader rerr;
  std::uint32_t seqno = 0;
  if (const RouteEntry* stale = table_.find(dst)) seqno = stale->seqno + 1;
  rerr.unreachable.push_back({dst, seqno});
  Packet out(0);
  out.push(rerr);
  send_control(std::move(out), kBroadcast);
}

void AodvProtocol::handle_rreq(Packet packet, NodeId from) {
  RreqHeader rreq = packet.pop<RreqHeader>();
  refresh_neighbor(from);

  const auto key = std::make_pair(rreq.origin, rreq.rreq_id);
  if (rreq_seen_.contains(key)) return;
  rreq_seen_[key] =
      sim_->now() + params_.ring_traversal_time(params_.net_diameter);

  ++rreq.hop_count;
  // Reverse route to the originator through the previous hop.
  update_route(rreq.origin, from, rreq.hop_count, rreq.origin_seqno, true,
               params_.active_route_timeout * 2);

  if (rreq.dst == address()) {
    // RFC 6.6.1: destination bumps its seqno to max(own, requested).
    if (rreq.dst_seqno_known &&
        static_cast<std::int32_t>(rreq.dst_seqno - seqno_) > 0) {
      seqno_ = rreq.dst_seqno;
    }
    ++seqno_;
    RrepHeader rrep;
    rrep.dst = address();
    rrep.dst_seqno = seqno_;
    rrep.origin = rreq.origin;
    rrep.hop_count = 0;
    rrep.lifetime = params_.my_route_timeout;
    Packet out(0);
    out.push(rrep);
    send_control(std::move(out), from);
    return;
  }

  // Intermediate node with a fresh-enough route replies on the
  // destination's behalf.
  if (const RouteEntry* route = table_.lookup(rreq.dst, sim_->now());
      route && route->valid_seqno && rreq.dst_seqno_known &&
      static_cast<std::int32_t>(route->seqno - rreq.dst_seqno) >= 0) {
    RrepHeader rrep;
    rrep.dst = rreq.dst;
    rrep.dst_seqno = route->seqno;
    rrep.origin = rreq.origin;
    rrep.hop_count = static_cast<std::uint8_t>(route->hop_count);
    rrep.lifetime = route->expires - sim_->now();
    Packet out(0);
    out.push(rrep);
    send_control(std::move(out), from);
    return;
  }

  if (rreq.ttl <= 1) return;
  --rreq.ttl;
  Packet out(0);
  out.push(rreq);
  send_control(std::move(out), kBroadcast);
}

void AodvProtocol::handle_rrep(Packet packet, NodeId from) {
  RrepHeader rrep = packet.pop<RrepHeader>();
  refresh_neighbor(from);

  ++rrep.hop_count;
  update_route(rrep.dst, from, rrep.hop_count, rrep.dst_seqno, true,
               rrep.lifetime);

  if (rrep.origin == address()) {
    // Our discovery succeeded.
    if (const auto it = discoveries_.find(rrep.dst); it != discoveries_.end()) {
      it->second.timeout.cancel();
      discoveries_.erase(it);
    }
    flush_buffer(rrep.dst);
    return;
  }
  // Forward along the reverse path.
  if (const RouteEntry* reverse = table_.lookup(rrep.origin, sim_->now())) {
    refresh_route_lifetime(rrep.origin, params_.active_route_timeout);
    Packet out(0);
    out.push(rrep);
    send_control(std::move(out), reverse->next_hop);
  }
}

void AodvProtocol::handle_rerr(Packet packet, NodeId from) {
  const RerrHeader rerr = packet.pop<RerrHeader>();
  RerrHeader forward;
  for (const auto& u : rerr.unreachable) {
    RouteEntry* e = table_.find(u.dst);
    if (e != nullptr && e->valid && e->next_hop == from) {
      e->valid = false;
      e->seqno = std::max(e->seqno, u.seqno);
      forward.unreachable.push_back({u.dst, e->seqno});
    }
  }
  if (!forward.unreachable.empty()) {
    Packet out(0);
    out.push(forward);
    send_control(std::move(out), kBroadcast);
  }
}

void AodvProtocol::handle_hello(const HelloHeader& hello, NodeId from) {
  refresh_neighbor(from);
  update_route(hello.origin, from, 1, hello.seqno, true,
               params_.hello_interval *
                   static_cast<std::int64_t>(params_.allowed_hello_loss));
}

void AodvProtocol::on_link_tx_failed(const Packet& packet, NodeId dest) {
  RoutingProtocol::on_link_tx_failed(packet, dest);
  handle_link_failure(dest);
}

void AodvProtocol::handle_link_failure(NodeId neighbor) {
  neighbor_expiry_.erase(neighbor);
  RerrHeader rerr;
  for (auto& [dst, e] : table_.entries()) {
    if (e.valid && e.next_hop == neighbor) {
      e.valid = false;
      ++e.seqno;  // RFC 6.11: increment seqno of each unreachable dest
      rerr.unreachable.push_back({dst, e.seqno});
    }
  }
  if (!rerr.unreachable.empty()) {
    Packet out(0);
    out.push(rerr);
    send_control(std::move(out), kBroadcast);
  }
}

}  // namespace cavenet::routing::aodv
