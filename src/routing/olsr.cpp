#include "routing/olsr.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace cavenet::routing::olsr {

using netsim::kBroadcast;
using netsim::NodeId;
using netsim::Packet;

OlsrProtocol::OlsrProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
                           OlsrParams params)
    : RoutingProtocol(sim, link, "olsr", 0x6f6c7372), params_(params) {}

void OlsrProtocol::start() {
  sim_->schedule(jitter(), "olsr", [this] { hello_timer(); });
  sim_->schedule(jitter() + SimTime::nanoseconds(params_.tc_interval.ns() / 2),
                 "olsr", [this] { tc_timer(); });
  sim_->schedule(jitter() + SimTime::seconds(1), "olsr",
                 [this] { hna_timer(); });
}

void OlsrProtocol::add_local_network(NodeId network) {
  local_networks_.push_back(network);
}

std::optional<NodeId> OlsrProtocol::gateway_for(NodeId network) const {
  const RouteEntry* route = nullptr;
  NodeId gateway = 0;
  for (const auto& assoc : hna_associations_) {
    if (assoc.network != network || assoc.expires <= sim_->now()) continue;
    const RouteEntry* candidate = table_.lookup(assoc.gateway, sim_->now());
    if (candidate == nullptr) continue;
    if (route == nullptr || candidate->hop_count < route->hop_count) {
      route = candidate;
      gateway = assoc.gateway;
    }
  }
  if (route == nullptr) return std::nullopt;
  return gateway;
}

const RouteEntry* OlsrProtocol::resolve(NodeId dst) const {
  if (const RouteEntry* direct = table_.lookup(dst, sim_->now())) {
    return direct;
  }
  // No host route: try the HNA association set, nearest gateway first.
  if (const auto gateway = gateway_for(dst)) {
    return table_.lookup(*gateway, sim_->now());
  }
  return nullptr;
}

void OlsrProtocol::send(Packet packet, NodeId destination) {
  DataHeader header;
  header.src = address();
  header.dst = destination;
  header.ttl = 32;
  packet.push(header);
  ++stats_.data_originated;
  if (const RouteEntry* route = resolve(destination)) {
    send_data_link(std::move(packet), route->next_hop);
    return;
  }
  // Proactive protocol: no discovery to wait for — if the topology has no
  // path right now, the packet is lost (a root cause of OLSR's lower
  // goodput in the paper's comparison).
  ++stats_.drops_no_route;
}

bool OlsrProtocol::link_is_sym(NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  return it != links_.end() && it->second.sym_until > sim_->now();
}

std::vector<NodeId> OlsrProtocol::symmetric_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [addr, link] : links_) {
    if (link.sym_until > sim_->now()) out.push_back(addr);
  }
  return out;
}

double OlsrProtocol::link_etx(NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return std::numeric_limits<double>::infinity();
  const double ni = it->second.ni;
  const double lqi = it->second.lqi;
  if (ni <= 0.0 || lqi <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (ni * lqi);
}

void OlsrProtocol::hello_timer() {
  expire_state();
  select_mprs();

  HelloHeader hello;
  hello.origin = address();
  for (const auto& [addr, link] : links_) {
    if (link.asym_until <= sim_->now() && link.sym_until <= sim_->now()) {
      continue;
    }
    HelloHeader::NeighborEntry entry;
    entry.addr = addr;
    if (mprs_.contains(addr)) entry.code = LinkCode::kMpr;
    else if (link.sym_until > sim_->now()) entry.code = LinkCode::kSym;
    else entry.code = LinkCode::kAsym;
    entry.link_quality = static_cast<std::uint8_t>(
        std::clamp(link.ni * 255.0, 0.0, 255.0));
    hello.neighbors.push_back(entry);
  }
  Packet packet(0);
  packet.push(hello);
  send_control(std::move(packet), kBroadcast);

  ++hello_ticks_;
  if (params_.use_etx && hello_ticks_ % params_.etx_window == 0) {
    etx_window_rollover();
  }
  compute_routes();
  sim_->schedule(params_.hello_interval + jitter(10), "olsr",
                 [this] { hello_timer(); });
}

void OlsrProtocol::etx_window_rollover() {
  for (auto& [addr, link] : links_) {
    link.ni = std::min(1.0, static_cast<double>(link.hellos_in_window) /
                                static_cast<double>(params_.etx_window));
    link.hellos_in_window = 0;
  }
}

void OlsrProtocol::tc_timer() {
  expire_state();
  if (!mpr_selectors_.empty()) {
    TcHeader tc;
    tc.origin = address();
    tc.message_seq = ++message_seq_;
    tc.ansn = ansn_;
    tc.ttl = 255;
    for (const auto& [selector, expiry] : mpr_selectors_) {
      TcHeader::Advertised adv;
      adv.addr = selector;
      if (const auto it = links_.find(selector); it != links_.end()) {
        adv.link_quality = static_cast<std::uint8_t>(
            std::clamp(it->second.ni * 255.0, 0.0, 255.0));
      }
      tc.advertised.push_back(adv);
    }
    duplicates_[{address(), tc.message_seq}] =
        sim_->now() + params_.duplicate_hold;
    Packet packet(0);
    packet.push(tc);
    send_control(std::move(packet), kBroadcast);
  }
  sim_->schedule(params_.tc_interval + jitter(10), "olsr",
                 [this] { tc_timer(); });
}

void OlsrProtocol::on_link_receive(Packet packet, NodeId from) {
  // Const peeks: the packet may share its header stack with every other
  // receiver of the broadcast, and reading must not detach it.
  if (const HelloHeader* hello = std::as_const(packet).peek<HelloHeader>()) {
    handle_hello(*hello, from);
  } else if (std::as_const(packet).peek<TcHeader>() != nullptr) {
    const TcHeader tc = *std::as_const(packet).peek<TcHeader>();
    handle_tc(std::move(packet), tc, from);
  } else if (const HnaHeader* hna = std::as_const(packet).peek<HnaHeader>()) {
    handle_hna(*hna, from);
  } else if (std::as_const(packet).peek<DataHeader>() != nullptr) {
    forward_data(std::move(packet), from);
  }
}

void OlsrProtocol::handle_hello(const HelloHeader& hello, NodeId from) {
  const SimTime hold = params_.neighbor_hold();
  LinkTuple& link = links_[from];
  link.asym_until = sim_->now() + hold;
  ++link.hellos_in_window;
  if (!params_.use_etx) link.ni = 1.0;

  bool lists_me = false;
  for (const auto& entry : hello.neighbors) {
    if (entry.addr == address()) {
      lists_me = true;
      link.lqi = params_.use_etx
                     ? static_cast<double>(entry.link_quality) / 255.0
                     : 1.0;
      // The neighbour selected us as MPR: record selector.
      if (entry.code == LinkCode::kMpr) {
        const bool is_new = !mpr_selectors_.contains(from);
        mpr_selectors_[from] = sim_->now() + hold;
        if (is_new) ++ansn_;
      }
    }
  }
  if (lists_me) link.sym_until = sim_->now() + hold;

  // 2-hop neighbourhood: symmetric neighbours of a symmetric neighbour.
  if (link.sym_until > sim_->now()) {
    for (const auto& entry : hello.neighbors) {
      if (entry.addr == address()) continue;
      if (entry.code == LinkCode::kAsym) continue;
      const auto match = std::find_if(
          two_hop_.begin(), two_hop_.end(), [&](const TwoHopTuple& t) {
            return t.neighbor == from && t.two_hop == entry.addr;
          });
      if (match != two_hop_.end()) {
        match->expires = sim_->now() + hold;
      } else {
        two_hop_.push_back({from, entry.addr, sim_->now() + hold});
      }
    }
  }
  compute_routes();
}

void OlsrProtocol::handle_tc(Packet packet, const TcHeader& tc, NodeId from) {
  (void)packet;
  if (tc.origin == address()) return;
  if (!link_is_sym(from)) return;  // RFC 9.5: accept only from sym neighbours

  const auto key = std::make_pair(tc.origin, tc.message_seq);
  const bool duplicate = duplicates_.contains(key);
  if (!duplicate) {
    duplicates_[key] = sim_->now() + params_.duplicate_hold;

    // Purge older ANSN tuples from this origin, then record the new set.
    std::erase_if(topology_, [&](const TopologyTuple& t) {
      return t.last_hop == tc.origin &&
             static_cast<std::int16_t>(tc.ansn - t.ansn) > 0;
    });
    for (const auto& adv : tc.advertised) {
      const auto match = std::find_if(
          topology_.begin(), topology_.end(), [&](const TopologyTuple& t) {
            return t.dest == adv.addr && t.last_hop == tc.origin;
          });
      const double quality =
          params_.use_etx ? static_cast<double>(adv.link_quality) / 255.0
                          : 1.0;
      if (match != topology_.end()) {
        match->ansn = tc.ansn;
        match->expires = sim_->now() + params_.topology_hold();
        match->quality = quality;
      } else {
        topology_.push_back({adv.addr, tc.origin, tc.ansn,
                             sim_->now() + params_.topology_hold(), quality});
      }
    }
    compute_routes();
  }

  // MPR flooding rule: retransmit only if the sender selected us as MPR.
  if (!duplicate && mpr_selectors_.contains(from) && tc.ttl > 1) {
    TcHeader fwd = tc;
    --fwd.ttl;
    Packet out(0);
    out.push(fwd);
    send_control(std::move(out), kBroadcast);
  }
}

void OlsrProtocol::forward_data(Packet packet, NodeId from) {
  (void)from;
  const DataHeader* header = std::as_const(packet).peek<DataHeader>();
  // A gateway terminates traffic for its associated networks (the packet
  // would leave the MANET through the uplink here).
  if (std::find(local_networks_.begin(), local_networks_.end(),
                header->dst) != local_networks_.end()) {
    const DataHeader popped = packet.pop<DataHeader>();
    deliver(std::move(packet), popped.src, popped.hops);
    return;
  }
  if (header->dst == address()) {
    const DataHeader popped = packet.pop<DataHeader>();
    deliver(std::move(packet), popped.src, popped.hops);
    return;
  }
  if (header->ttl <= 1) {
    ++stats_.drops_ttl;
    return;
  }
  const NodeId dst = header->dst;
  // Forwarding rewrites ttl/hops: only now take a writable header
  // (detaching a stack shared with the other broadcast receivers).
  DataHeader* fwd = packet.peek<DataHeader>();
  --fwd->ttl;
  ++fwd->hops;
  if (const RouteEntry* route = resolve(dst)) {
    ++stats_.data_forwarded;
    send_data_link(std::move(packet), route->next_hop);
    return;
  }
  ++stats_.drops_no_route;
}

void OlsrProtocol::hna_timer() {
  if (!local_networks_.empty()) {
    HnaHeader hna;
    hna.origin = address();
    hna.message_seq = ++message_seq_;
    hna.ttl = 255;
    hna.networks = local_networks_;
    duplicates_[{address(), hna.message_seq}] =
        sim_->now() + params_.duplicate_hold;
    Packet packet(0);
    packet.push(hna);
    send_control(std::move(packet), kBroadcast);
  }
  sim_->schedule(params_.hna_interval + jitter(10), "olsr",
                 [this] { hna_timer(); });
}

void OlsrProtocol::handle_hna(const HnaHeader& hna, NodeId from) {
  if (hna.origin == address()) return;
  if (!link_is_sym(from)) return;

  const auto key = std::make_pair(hna.origin, hna.message_seq);
  const bool duplicate = duplicates_.contains(key);
  if (!duplicate) {
    duplicates_[key] = sim_->now() + params_.duplicate_hold;
    for (const NodeId network : hna.networks) {
      const auto match = std::find_if(
          hna_associations_.begin(), hna_associations_.end(),
          [&](const HnaTuple& t) {
            return t.network == network && t.gateway == hna.origin;
          });
      if (match != hna_associations_.end()) {
        match->expires = sim_->now() + params_.hna_hold();
      } else {
        hna_associations_.push_back(
            {network, hna.origin, sim_->now() + params_.hna_hold()});
      }
    }
  }
  // Same MPR flooding rule as TC.
  if (!duplicate && mpr_selectors_.contains(from) && hna.ttl > 1) {
    HnaHeader fwd = hna;
    --fwd.ttl;
    Packet out(0);
    out.push(fwd);
    send_control(std::move(out), kBroadcast);
  }
}

void OlsrProtocol::expire_state() {
  const SimTime now = sim_->now();
  std::erase_if(links_, [&](const auto& kv) {
    return kv.second.sym_until <= now && kv.second.asym_until <= now;
  });
  std::erase_if(two_hop_,
                [&](const TwoHopTuple& t) { return t.expires <= now; });
  const std::size_t selectors_before = mpr_selectors_.size();
  std::erase_if(mpr_selectors_,
                [&](const auto& kv) { return kv.second <= now; });
  if (mpr_selectors_.size() != selectors_before) ++ansn_;
  std::erase_if(topology_,
                [&](const TopologyTuple& t) { return t.expires <= now; });
  std::erase_if(hna_associations_,
                [&](const HnaTuple& t) { return t.expires <= now; });
  std::erase_if(duplicates_,
                [&](const auto& kv) { return kv.second <= now; });
}

void OlsrProtocol::select_mprs() {
  // Greedy set cover (RFC 8.3.1 heuristic): first neighbours that are the
  // sole cover of some 2-hop node, then best coverage counts.
  mprs_.clear();
  const auto neighbors = symmetric_neighbors();
  std::set<NodeId> neighbor_set(neighbors.begin(), neighbors.end());

  // Strict 2-hop set: reachable via a sym neighbour, not a neighbour or us.
  std::set<NodeId> uncovered;
  std::map<NodeId, std::vector<NodeId>> coverers;  // two-hop -> neighbours
  for (const auto& t : two_hop_) {
    if (t.expires <= sim_->now()) continue;
    if (!neighbor_set.contains(t.neighbor)) continue;
    if (t.two_hop == address() || neighbor_set.contains(t.two_hop)) continue;
    uncovered.insert(t.two_hop);
    coverers[t.two_hop].push_back(t.neighbor);
  }

  for (const auto& [two_hop, covering] : coverers) {
    if (covering.size() == 1) {
      mprs_.insert(covering.front());
    }
  }
  auto cover = [&](NodeId mpr) {
    std::erase_if(uncovered, [&](NodeId n2) {
      const auto& c = coverers[n2];
      return std::find(c.begin(), c.end(), mpr) != c.end();
    });
  };
  for (const NodeId mpr : mprs_) cover(mpr);

  while (!uncovered.empty()) {
    NodeId best = 0;
    std::size_t best_count = 0;
    for (const NodeId n : neighbors) {
      if (mprs_.contains(n)) continue;
      std::size_t count = 0;
      for (const NodeId n2 : uncovered) {
        const auto& c = coverers[n2];
        if (std::find(c.begin(), c.end(), n) != c.end()) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = n;
      }
    }
    if (best_count == 0) break;  // unreachable 2-hop nodes (stale tuples)
    mprs_.insert(best);
    cover(best);
  }
}

void OlsrProtocol::compute_routes() {
  // Dijkstra over sym links + topology edges. Cost is 1 per hop, or ETX
  // when the LQ extension is active.
  table_.clear();
  const SimTime now = sim_->now();

  struct Item {
    double cost;
    std::uint32_t hops;
    NodeId node;
    NodeId first_hop;
    bool operator>(const Item& other) const { return cost > other.cost; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  std::map<NodeId, double> best_cost;

  for (const auto& [addr, link] : links_) {
    if (link.sym_until <= now) continue;
    const double cost = params_.use_etx ? link_etx(addr) : 1.0;
    if (cost == std::numeric_limits<double>::infinity()) continue;
    frontier.push({cost, 1, addr, addr});
  }

  // Adjacency from the topology set: last_hop -> dest.
  std::map<NodeId, std::vector<std::pair<NodeId, double>>> adjacency;
  for (const auto& t : topology_) {
    if (t.expires <= now) continue;
    const double cost =
        params_.use_etx ? (t.quality > 0.0 ? 1.0 / t.quality : 0.0) : 1.0;
    if (cost <= 0.0) continue;
    adjacency[t.last_hop].push_back({t.dest, cost});
  }

  while (!frontier.empty()) {
    const Item item = frontier.top();
    frontier.pop();
    if (const auto it = best_cost.find(item.node);
        it != best_cost.end() && it->second <= item.cost) {
      continue;
    }
    best_cost[item.node] = item.cost;

    RouteEntry& e = table_.upsert(item.node);
    e.next_hop = item.first_hop;
    e.hop_count = item.hops;
    e.valid = true;
    e.expires = SimTime::max();

    const auto adj = adjacency.find(item.node);
    if (adj == adjacency.end()) continue;
    for (const auto& [dest, cost] : adj->second) {
      if (dest == address()) continue;
      frontier.push({item.cost + cost, item.hops + 1, dest, item.first_hop});
    }
  }
}

}  // namespace cavenet::routing::olsr
