// Ad hoc On-Demand Distance Vector routing (RFC 3561), as evaluated by the
// paper's Table-I scenario (hello interval 1 s).
//
// Implemented: RREQ flooding with expanding-ring search, reverse/forward
// route setup, destination and intermediate-node RREPs, sequence-number
// freshness rules, hello-based neighbour sensing, MAC-feedback link-failure
// detection, RERR propagation, and origin-side packet buffering during
// route discovery (the buffered burst released after discovery is what
// produces the paper's Fig. 8 goodput spikes of ~10x the CBR rate).
#ifndef CAVENET_ROUTING_AODV_H
#define CAVENET_ROUTING_AODV_H

#include <cstdint>
#include <map>
#include <vector>

#include "routing/common.h"

namespace cavenet::routing::aodv {

struct AodvParams {
  SimTime hello_interval = SimTime::seconds(1);
  std::uint32_t allowed_hello_loss = 2;
  SimTime active_route_timeout = SimTime::seconds(3);
  SimTime my_route_timeout = SimTime::seconds(6);
  SimTime node_traversal_time = SimTime::milliseconds(40);
  std::uint32_t net_diameter = 35;
  std::uint32_t rreq_retries = 2;
  /// Expanding-ring search: TTL_START / TTL_INCREMENT / TTL_THRESHOLD.
  std::uint32_t ttl_start = 5;
  std::uint32_t ttl_increment = 2;
  std::uint32_t ttl_threshold = 7;
  std::size_t buffer_per_destination = 64;

  SimTime ring_traversal_time(std::uint32_t ttl) const noexcept {
    return node_traversal_time * (2 * static_cast<std::int64_t>(ttl));
  }
};

struct RreqHeader final : netsim::HeaderBase<RreqHeader> {
  std::uint32_t rreq_id = 0;
  netsim::NodeId dst = 0;
  std::uint32_t dst_seqno = 0;
  bool dst_seqno_known = false;  ///< RFC 'U' flag inverted
  netsim::NodeId origin = 0;
  std::uint32_t origin_seqno = 0;
  std::uint8_t hop_count = 0;
  std::uint8_t ttl = 0;

  std::size_t size_bytes() const override { return 24; }
  std::string_view name() const override { return "aodv-rreq"; }
};

struct RrepHeader final : netsim::HeaderBase<RrepHeader> {
  netsim::NodeId dst = 0;       ///< route target the RREP describes
  std::uint32_t dst_seqno = 0;
  netsim::NodeId origin = 0;    ///< requester the RREP travels to
  std::uint8_t hop_count = 0;
  SimTime lifetime = SimTime::zero();

  std::size_t size_bytes() const override { return 20; }
  std::string_view name() const override { return "aodv-rrep"; }
};

struct RerrHeader final : netsim::HeaderBase<RerrHeader> {
  struct Unreachable {
    netsim::NodeId dst;
    std::uint32_t seqno;
  };
  std::vector<Unreachable> unreachable;

  std::size_t size_bytes() const override {
    return 4 + 8 * unreachable.size();
  }
  std::string_view name() const override { return "aodv-rerr"; }
};

/// Hello: RFC models it as a TTL-1 RREP; a dedicated header keeps parsing
/// honest while matching the RREP wire size.
struct HelloHeader final : netsim::HeaderBase<HelloHeader> {
  netsim::NodeId origin = 0;
  std::uint32_t seqno = 0;

  std::size_t size_bytes() const override { return 20; }
  std::string_view name() const override { return "aodv-hello"; }
};

class AodvProtocol final : public RoutingProtocol {
 public:
  AodvProtocol(netsim::Simulator& sim, netsim::LinkLayer& link,
               AodvParams params = {});

  void start() override;
  void send(netsim::Packet packet, netsim::NodeId destination) override;
  const RoutingTable& table() const override { return table_; }

  const AodvParams& params() const noexcept { return params_; }
  std::uint32_t seqno() const noexcept { return seqno_; }

 private:
  struct Discovery {
    std::uint32_t retries = 0;
    std::uint32_t ttl = 0;
    netsim::EventId timeout;
  };

  void on_link_receive(netsim::Packet packet, netsim::NodeId from) override;
  void on_link_tx_failed(const netsim::Packet& packet,
                         netsim::NodeId dest) override;

  void route_output(netsim::Packet packet);
  void forward_data(netsim::Packet packet, netsim::NodeId from);
  void start_discovery(netsim::NodeId dst);
  void send_rreq(netsim::NodeId dst);
  void discovery_timeout(netsim::NodeId dst);
  void handle_rreq(netsim::Packet packet, netsim::NodeId from);
  void handle_rrep(netsim::Packet packet, netsim::NodeId from);
  void handle_rerr(netsim::Packet packet, netsim::NodeId from);
  void handle_hello(const HelloHeader& hello, netsim::NodeId from);
  void hello_timer();
  void refresh_neighbor(netsim::NodeId neighbor);
  void handle_link_failure(netsim::NodeId neighbor);
  void update_route(netsim::NodeId dst, netsim::NodeId next_hop,
                    std::uint32_t hop_count, std::uint32_t seqno,
                    bool seqno_known, SimTime lifetime);
  void refresh_route_lifetime(netsim::NodeId dst, SimTime lifetime);
  void flush_buffer(netsim::NodeId dst);

  AodvParams params_;
  RoutingTable table_;
  PacketBuffer buffer_;
  std::uint32_t seqno_ = 0;
  std::uint32_t rreq_id_ = 0;
  /// Seen RREQ cache keyed by (origin, rreq_id) with expiry.
  std::map<std::pair<netsim::NodeId, std::uint32_t>, SimTime> rreq_seen_;
  std::map<netsim::NodeId, SimTime> neighbor_expiry_;
  std::map<netsim::NodeId, Discovery> discoveries_;
};

}  // namespace cavenet::routing::aodv

#endif  // CAVENET_ROUTING_AODV_H
