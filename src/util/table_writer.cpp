#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cavenet {

std::string format_cell(const TableCell& cell) {
  struct Visitor {
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      return buf;
    }
  };
  return std::visit(Visitor{}, cell);
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("table needs columns");
}

void TableWriter::add_row(std::vector<TableCell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match column count");
  }
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
}

void TableWriter::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    out << '\n';
  }
}

bool TableWriter::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace cavenet
