// Simulation time as integral nanoseconds.
//
// MAC-layer timing (SIFS = 10 us, slot = 20 us, ...) must compose exactly;
// floating-point seconds accumulate drift and break event ordering. SimTime
// is a strong typedef over int64 nanoseconds with explicit conversions.
#ifndef CAVENET_UTIL_SIM_TIME_H
#define CAVENET_UTIL_SIM_TIME_H

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace cavenet {

/// A point in (or duration of) simulation time, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  static constexpr SimTime zero() noexcept { return SimTime(0); }
  static constexpr SimTime max() noexcept {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr SimTime nanoseconds(std::int64_t ns) noexcept {
    return SimTime(ns);
  }
  static constexpr SimTime microseconds(std::int64_t us) noexcept {
    return SimTime(us * 1'000);
  }
  static constexpr SimTime milliseconds(std::int64_t ms) noexcept {
    return SimTime(ms * 1'000'000);
  }
  static constexpr SimTime seconds(std::int64_t s) noexcept {
    return SimTime(s * 1'000'000'000);
  }
  /// Converts from floating-point seconds, rounding to the nearest ns.
  static SimTime from_seconds(double s) noexcept;

  constexpr std::int64_t ns() const noexcept { return ns_; }
  constexpr double us() const noexcept { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime other) const noexcept {
    return SimTime(ns_ + other.ns_);
  }
  constexpr SimTime operator-(SimTime other) const noexcept {
    return SimTime(ns_ - other.ns_);
  }
  constexpr SimTime& operator+=(SimTime other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const noexcept {
    return SimTime(ns_ * k);
  }
  constexpr std::int64_t operator/(SimTime other) const noexcept {
    return ns_ / other.ns_;
  }

  /// "12.345678901s" style rendering for logs.
  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::microseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::milliseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace cavenet

#endif  // CAVENET_UTIL_SIM_TIME_H
