// Physical unit conversions used across the PHY and mobility code.
#ifndef CAVENET_UTIL_UNITS_H
#define CAVENET_UTIL_UNITS_H

#include <cmath>

namespace cavenet {

/// Converts power in dBm to Watts.
inline double dbm_to_watt(double dbm) noexcept {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

/// Converts power in Watts to dBm.
inline double watt_to_dbm(double watt) noexcept {
  return 10.0 * std::log10(watt) + 30.0;
}

/// Converts a dimensionless ratio to decibels.
inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Converts decibels to a dimensionless ratio.
inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// km/h to m/s.
inline constexpr double kmh_to_ms(double kmh) noexcept { return kmh / 3.6; }

/// m/s to km/h.
inline constexpr double ms_to_kmh(double ms) noexcept { return ms * 3.6; }

/// Speed of light, m/s.
inline constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace cavenet

#endif  // CAVENET_UTIL_UNITS_H
