// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of CAVENET++ draws from its own Rng stream,
// seeded from a master seed plus a stream identifier. Identical seeds
// reproduce identical traffic traces, packet logs and metrics, which the
// test suite relies on.
//
// The generator is xoshiro256** 1.0 (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. It is small, fast, and of far
// higher quality than std::minstd_rand while being fully portable across
// standard library implementations (std::mt19937's distributions are not
// bit-reproducible across vendors; ours are hand-rolled and are).
#ifndef CAVENET_UTIL_RNG_H
#define CAVENET_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace cavenet {

/// SplitMix64: used to expand a 64-bit seed into xoshiro256** state.
/// Also usable standalone for cheap hash-like seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** pseudo-random generator with reproducible distributions.
///
/// Rng is move-only. Copying a generator would silently give two
/// components the *same* future draws — a correlated-streams bug that is
/// invisible until an ensemble's replications stop being independent. Use
/// substream() to derive an independent child stream instead, or
/// std::move() to transfer ownership of a stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept;

  /// Derives an independent stream: same master seed + different stream id
  /// gives a statistically independent generator. Deterministic.
  Rng(std::uint64_t master_seed, std::uint64_t stream_id) noexcept;

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) noexcept = default;
  Rng& operator=(Rng&&) noexcept = default;

  /// Counter-based child-stream split: substream(i) depends only on the
  /// seed material this generator was constructed with and on `child_id`,
  /// never on how many draws have been made since — so replication i of an
  /// ensemble gets the same stream no matter which worker thread reaches
  /// it first or in what order. Distinct child ids (and distinct parents)
  /// give statistically independent streams; splits nest.
  Rng substream(std::uint64_t child_id) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  /// Inline: this is the innermost call of every stochastic hot loop
  /// (the NaS slowdown pass draws one per moving vehicle per step), so
  /// the generator must compile to a handful of register ops, not a
  /// cross-TU call.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random bits into the mantissa.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  /// Draw-order contract: consumes exactly one next_u64() draw iff
  /// 0 < p < 1; the clamped ends consume nothing.
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }
  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double exponential(double lambda) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) noexcept {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = uniform_int(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

  /// Long-jump equivalent: discards 2^128 draws, for stream separation.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  /// Hash of the construction-time seed material, fixed for the stream's
  /// lifetime; substream() keys children off it (counter-based split).
  std::uint64_t stream_key_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cavenet

#endif  // CAVENET_UTIL_RNG_H
