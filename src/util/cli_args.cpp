#include "util/cli_args.h"

#include <cstdlib>
#include <stdexcept>

#include "util/suggest.h"

namespace cavenet {
namespace {

bool is_flag(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-' &&
         token[2] != '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::set<std::string>& switches) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens, switches);
}

CliArgs::CliArgs(const std::vector<std::string>& tokens,
                 const std::set<std::string>& switches) {
  parse(tokens, switches);
}

void CliArgs::parse(const std::vector<std::string>& tokens,
                    const std::set<std::string>& switches) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (!is_flag(token)) {
      if (token.rfind("---", 0) == 0) {
        throw std::invalid_argument("malformed flag: " + token);
      }
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--flag value" unless the next token is itself a flag or the flag
    // is a declared switch (then boolean).
    if (!switches.contains(body) && i + 1 < tokens.size() &&
        !is_flag(tokens[i + 1])) {
      flags_[body] = tokens[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& flag) const {
  queried_[flag] = true;
  return flags_.contains(flag);
}

std::string CliArgs::get_string(const std::string& flag,
                                const std::string& default_value) const {
  queried_[flag] = true;
  const auto it = flags_.find(flag);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t CliArgs::get_int(const std::string& flag,
                              std::int64_t default_value) const {
  queried_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + flag + " expects an integer, got '" +
                                it->second + "'");
  }
  return value;
}

double CliArgs::get_double(const std::string& flag,
                           double default_value) const {
  queried_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + flag + " expects a number, got '" +
                                it->second + "'");
  }
  return value;
}

bool CliArgs::get_bool(const std::string& flag, bool default_value) const {
  queried_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("--" + flag + " expects a boolean, got '" + v +
                              "'");
}

std::vector<std::string> CliArgs::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [flag, value] : flags_) {
    if (!queried_.contains(flag)) out.push_back(flag);
  }
  return out;
}

std::string CliArgs::describe_unknown(const std::string& flag) const {
  std::vector<std::string> supported;
  supported.reserve(queried_.size());
  for (const auto& [name, was_queried] : queried_) {
    if (name != flag) supported.push_back("--" + name);
  }
  return "unknown flag --" + flag + did_you_mean("--" + flag, supported);
}

void CliArgs::reject_unknown_flags() const {
  const auto unknown = unknown_flags();
  if (!unknown.empty()) {
    throw std::invalid_argument(describe_unknown(unknown.front()));
  }
}

}  // namespace cavenet
