#include "util/executor.h"

#include <algorithm>
#include <chrono>

namespace cavenet::exec {

int resolve_workers(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void InlineExecutor::run_chunks(std::size_t n, std::size_t grain,
                                void (*fn)(void*, std::size_t, std::size_t),
                                void* ctx) {
  (void)grain;
  if (n == 0) return;
  fn(ctx, 0, n);
}

ThreadPoolExecutor::ThreadPoolExecutor(int threads)
    : lanes_(resolve_workers(threads)) {
  lane_busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(lanes_));
  for (int i = 0; i < lanes_; ++i) lane_busy_ns_[i].store(0);
  threads_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back(&ThreadPoolExecutor::worker_main, this,
                          static_cast<std::size_t>(lane));
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPoolExecutor::claim_and_run(std::size_t lane) {
  const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
  if (c >= chunk_count_) return false;
  const std::size_t begin = c * chunk_;
  const std::size_t end = std::min(n_, begin + chunk_);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    fn_(ctx_, begin, end);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (begin < failure_begin_) {
      failure_begin_ = begin;
      failure_ = std::current_exception();
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  lane_busy_ns_[lane].fetch_add(static_cast<std::uint64_t>(ns),
                                std::memory_order_relaxed);
  diag_chunks_.fetch_add(1, std::memory_order_relaxed);
  if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      chunk_count_) {
    // Empty critical section pairs with the caller's predicate check so
    // the notify can never slip between its check and its wait.
    { const std::lock_guard<std::mutex> lock(mutex_); }
    done_cv_.notify_all();
  }
  return true;
}

void ThreadPoolExecutor::worker_main(std::size_t lane) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++active_;
    lock.unlock();
    while (claim_and_run(lane)) {
    }
    lock.lock();
    if (--active_ == 0) idle_cv_.notify_all();
  }
}

void ThreadPoolExecutor::run_chunks(
    std::size_t n, std::size_t grain,
    void (*fn)(void*, std::size_t, std::size_t), void* ctx) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (lanes_ <= 1 || n <= grain) {
    // Nothing to fan out; run inline (still counts toward lane 0).
    const auto t0 = std::chrono::steady_clock::now();
    fn(ctx, 0, n);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    lane_busy_ns_[0].fetch_add(static_cast<std::uint64_t>(ns),
                               std::memory_order_relaxed);
    return;
  }

  // Chunks a few times smaller than a lane's even share, so late lanes
  // rebalance without paying a claim per index.
  const std::size_t lanes = static_cast<std::size_t>(lanes_);
  const std::size_t chunk =
      std::max(grain, (n + lanes * 4 - 1) / (lanes * 4));
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Stragglers from the previous batch may still be inside their claim
    // loop; batch state must not change under them.
    idle_cv_.wait(lock, [&] { return active_ == 0; });
    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    chunk_ = chunk;
    chunk_count_ = (n + chunk - 1) / chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    failure_ = nullptr;
    failure_begin_ = n;
    ++generation_;
    ++diag_batches_;
    diag_tasks_ += n;
  }
  work_cv_.notify_all();

  while (claim_and_run(0)) {
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return done_chunks_.load(std::memory_order_acquire) == chunk_count_;
  });
  if (failure_) {
    const std::exception_ptr failure = failure_;
    failure_ = nullptr;
    lock.unlock();
    std::rethrow_exception(failure);
  }
}

ThreadPoolExecutor::Diagnostics ThreadPoolExecutor::diagnostics() const {
  Diagnostics d;
  const std::lock_guard<std::mutex> lock(mutex_);
  d.batches = diag_batches_;
  d.tasks = diag_tasks_;
  d.chunks = diag_chunks_.load(std::memory_order_relaxed);
  d.lane_busy_ms.reserve(static_cast<std::size_t>(lanes_));
  for (int i = 0; i < lanes_; ++i) {
    d.lane_busy_ms.push_back(
        static_cast<double>(
            lane_busy_ns_[i].load(std::memory_order_relaxed)) /
        1e6);
  }
  return d;
}

}  // namespace cavenet::exec
