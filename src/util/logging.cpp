#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace cavenet {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return level >= log_level() && level != LogLevel::kOff;
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace cavenet
