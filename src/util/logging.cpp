#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include <chrono>

namespace cavenet {
namespace {

LogLevel initial_level() noexcept {
  if (const char* env = std::getenv("CAVENET_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    log_line(LogLevel::kWarn, "logging",
             std::string("unknown CAVENET_LOG_LEVEL \"") + env + "\"");
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (iequals(name, "trace")) return LogLevel::kTrace;
  if (iequals(name, "debug")) return LogLevel::kDebug;
  if (iequals(name, "info")) return LogLevel::kInfo;
  if (iequals(name, "warn") || iequals(name, "warning")) return LogLevel::kWarn;
  if (iequals(name, "error")) return LogLevel::kError;
  if (iequals(name, "off") || iequals(name, "none")) return LogLevel::kOff;
  return std::nullopt;
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return level >= log_level() && level != LogLevel::kOff;
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[64];
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  std::fprintf(stderr, "%s [%s] %.*s: %.*s\n", stamp, level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace cavenet
