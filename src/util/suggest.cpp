#include "util/suggest.h"

#include <algorithm>
#include <numeric>

namespace cavenet {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; rows are positions in `b`.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];  // row[j-1] of the previous row
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 0;
  for (const std::string& candidate : candidates) {
    if (candidate == name) continue;
    const std::size_t distance = edit_distance(name, candidate);
    const std::size_t budget =
        std::max(name.size(), candidate.size()) / 3 + 1;
    if (distance > budget) continue;
    if (best.empty() || distance < best_distance) {
      best = candidate;
      best_distance = distance;
    }
  }
  return best;
}

std::string did_you_mean(std::string_view name,
                         const std::vector<std::string>& candidates) {
  const std::string match = closest_match(name, candidates);
  if (match.empty()) return "";
  return " (did you mean \"" + match + "\"?)";
}

}  // namespace cavenet
