// 2-D vector used for node positions and velocities on the plane.
#ifndef CAVENET_UTIL_VEC2_H
#define CAVENET_UTIL_VEC2_H

#include <cmath>
#include <compare>

namespace cavenet {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) noexcept {
    return {a.x * k, a.y * k};
  }
  friend constexpr Vec2 operator*(double k, Vec2 a) noexcept { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;

  constexpr double dot(Vec2 other) const noexcept {
    return x * other.x + y * other.y;
  }
  double norm() const noexcept { return std::hypot(x, y); }
  constexpr double norm_sq() const noexcept { return x * x + y * y; }
};

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

}  // namespace cavenet

#endif  // CAVENET_UTIL_VEC2_H
