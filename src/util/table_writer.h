// Tabular output for the benchmark harness.
//
// Every figure/table reproduction prints both a human-readable aligned table
// (stdout) and, optionally, a CSV file so results can be re-plotted. One
// writer instance per table keeps columns consistent.
#ifndef CAVENET_UTIL_TABLE_WRITER_H
#define CAVENET_UTIL_TABLE_WRITER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace cavenet {

/// A cell is a string, an integer, or a double (printed with %.6g).
using TableCell = std::variant<std::string, std::int64_t, double>;

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> columns);

  /// Appends a row; must have exactly as many cells as columns.
  void add_row(std::vector<TableCell> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& out) const;
  /// Convenience: writes CSV to `path`, returns false on I/O failure.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<TableCell>> rows_;
};

/// Formats a cell for display.
std::string format_cell(const TableCell& cell);

}  // namespace cavenet

#endif  // CAVENET_UTIL_TABLE_WRITER_H
