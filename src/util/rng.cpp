#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace cavenet {

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  stream_key_ = SplitMix64(seed ^ 0x6a09e667f3bcc909ULL).next();
}

Rng::Rng(std::uint64_t master_seed, std::uint64_t stream_id) noexcept
    : Rng(master_seed) {
  // Mix the stream id into the state, then decorrelate with a jump. This is
  // cheaper than stream_id sequential jumps and still gives independent
  // streams because SplitMix64 output is equidistributed.
  SplitMix64 sm(stream_id ^ 0xa3ec647659359acdULL);
  for (auto& word : s_) word ^= sm.next();
  jump();
  stream_key_ ^= SplitMix64(stream_id ^ 0xbb67ae8584caa73bULL).next();
}

Rng Rng::substream(std::uint64_t child_id) const noexcept {
  // The child is an ordinary (master, stream) generator keyed on this
  // stream's construction-time key: independent of the parent's current
  // state, and the child's own stream_key_ re-mixes (key, child_id), so
  // grandchildren are distinct from children.
  return Rng(stream_key_, child_id);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_int(span));
}


double Rng::exponential(double lambda) noexcept {
  // -log(1 - U) is exponential(1); 1 - U avoids log(0).
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= s_[i];
      }
      next_u64();
    }
  }
  s_ = acc;
}

}  // namespace cavenet
