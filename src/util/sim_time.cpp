#include "util/sim_time.h"

#include <cmath>
#include <cstdio>

namespace cavenet {

SimTime SimTime::from_seconds(double s) noexcept {
  return SimTime(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string SimTime::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9fs", sec());
  return buf;
}

}  // namespace cavenet
