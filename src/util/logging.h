// Minimal leveled logger.
//
// Simulations produce enormous event volumes, so logging defaults to Warn
// and formatting cost is only paid for enabled levels. No global mutable
// state beyond the level itself (tests flip it around specific sections).
#ifndef CAVENET_UTIL_LOGGING_H
#define CAVENET_UTIL_LOGGING_H

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cavenet {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log level. Defaults to kWarn, overridable at startup with
/// the CAVENET_LOG_LEVEL environment variable ("trace".."error", "off").
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses a level name ("info", "WARN", ...); nullopt when unrecognized.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// True if `level` messages are currently emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one line to stderr:
/// "2026-08-06T12:34:56.789Z [level] component: message".
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cavenet

/// Stream-style logging: CAVENET_LOG(kDebug, "mac") << "tx " << id;
/// The message expression is not evaluated when the level is disabled.
#define CAVENET_LOG(level, component)                       \
  if (!::cavenet::log_enabled(::cavenet::LogLevel::level)) { \
  } else                                                    \
    ::cavenet::detail::LogMessage(::cavenet::LogLevel::level, (component))

#endif  // CAVENET_UTIL_LOGGING_H
