// "Did you mean ...?" suggestions for user-facing name lookups (CLI
// flags, spec keys). Shared so every front end rejects typos the same way.
#ifndef CAVENET_UTIL_SUGGEST_H
#define CAVENET_UTIL_SUGGEST_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cavenet {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name`, or "" when nothing is plausibly a
/// typo. A candidate qualifies when its edit distance is at most
/// max(name.size(), candidate.size()) / 3 + 1 — "jbos" suggests "jobs",
/// but "frobnicate" suggests nothing. Ties go to the earliest candidate.
std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates);

/// " (did you mean \"X\"?)" for the closest candidate, or "" when there
/// is none — ready to append to an error message.
std::string did_you_mean(std::string_view name,
                         const std::vector<std::string>& candidates);

}  // namespace cavenet

#endif  // CAVENET_UTIL_SUGGEST_H
