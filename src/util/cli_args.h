// Minimal command-line flag parsing for the CAVENET tools.
//
// Supports "--flag value", "--flag=value" and bare "--flag" booleans, plus
// positional arguments. No external dependencies; errors throw with a
// message naming the offending flag.
#ifndef CAVENET_UTIL_CLI_ARGS_H
#define CAVENET_UTIL_CLI_ARGS_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace cavenet {

class CliArgs {
 public:
  /// Parses argv[1..argc). Throws std::invalid_argument on malformed input
  /// (e.g. "---x"). `switches` declares flags that never take a separate
  /// value token ("--validate spec.json" keeps spec.json positional);
  /// "--switch=value" still works for explicit overrides.
  CliArgs(int argc, const char* const* argv,
          const std::set<std::string>& switches = {});
  /// Parses a pre-split token list (for tests).
  explicit CliArgs(const std::vector<std::string>& tokens,
                   const std::set<std::string>& switches = {});

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& flag) const;

  /// Typed access; the default is returned when the flag is absent.
  /// Throws std::invalid_argument when present but unparsable.
  std::string get_string(const std::string& flag,
                         const std::string& default_value = "") const;
  std::int64_t get_int(const std::string& flag,
                       std::int64_t default_value = 0) const;
  double get_double(const std::string& flag, double default_value = 0.0) const;
  /// Bare "--flag" and "--flag true/1/yes" are true.
  bool get_bool(const std::string& flag, bool default_value = false) const;

  /// Flags that were provided but never queried — call after parsing all
  /// expected flags to reject typos.
  std::vector<std::string> unknown_flags() const;

  /// "unknown flag --typo (did you mean "--jobs"?)" — the suggestion is
  /// drawn from the flags queried so far (i.e. the ones the tool
  /// supports). Used by reject_unknown_flags() and by front ends that
  /// format their own errors.
  std::string describe_unknown(const std::string& flag) const;

  /// Throws std::invalid_argument naming the first unqueried flag, with a
  /// did-you-mean suggestion. Call after querying every supported flag;
  /// every bench/tool front end funnels through this so typos fail
  /// loudly instead of silently running with defaults.
  void reject_unknown_flags() const;

 private:
  void parse(const std::vector<std::string>& tokens,
             const std::set<std::string>& switches);
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace cavenet

#endif  // CAVENET_UTIL_CLI_ARGS_H
