// Pluggable fork-join execution pool (docs/SCALING.md "Threading").
//
// One pool abstraction serves every parallel consumer in the tree: the
// ensemble runner fans whole replications across it, the simulation
// kernel's epoch barriers run shard precompute on it, and the channel
// parallelizes its position-snapshot and receive-power passes — all
// through the same Executor interface, which is also the seam a future
// multi-machine job server plugs into (ROADMAP item 4).
//
// Determinism contract: an Executor only decides WHERE work runs, never
// what it computes. parallel_for(n, ...) invokes body(i) exactly once for
// every i in [0, n) and returns only after all invocations completed, so
// callers that write disjoint slots and merge in index order observe
// results bitwise-identical to a serial loop at any worker count.
//
// This header lives in util (below obs) so every layer can use it;
// counters are therefore exposed as a plain Diagnostics struct that the
// layers above publish into a StatsRegistry (the `exec.*` vocabulary in
// docs/OBSERVABILITY.md).
#ifndef CAVENET_UTIL_EXECUTOR_H
#define CAVENET_UTIL_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cavenet::exec {

/// Resolves a requested worker count: values <= 0 mean "one lane per
/// hardware thread" (never less than 1).
int resolve_workers(int requested) noexcept;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Parallelism width, including the calling thread (>= 1).
  virtual int workers() const noexcept = 0;

  /// Invokes fn(ctx, begin, end) over contiguous chunks covering [0, n),
  /// each chunk at least `grain` indices (except the last), and returns
  /// once every chunk completed. Chunks may run concurrently on
  /// arbitrary lanes. If one or more chunks throw, the exception of the
  /// lowest-begin failing chunk is rethrown (deterministically) after
  /// the batch drains.
  virtual void run_chunks(std::size_t n, std::size_t grain,
                          void (*fn)(void*, std::size_t, std::size_t),
                          void* ctx) = 0;

  /// Fork-join loop: body(i) once per i in [0, n), `grain` indices per
  /// chunk minimum. The callable is passed by reference (no allocation,
  /// no std::function); it must be safe to invoke concurrently.
  template <typename F>
  void parallel_for(std::size_t n, std::size_t grain, F&& body) {
    using Fn = std::remove_reference_t<F>;
    run_chunks(
        n, grain,
        [](void* ctx, std::size_t begin, std::size_t end) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::size_t i = begin; i < end; ++i) f(i);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }
};

/// Serial executor: runs every chunk inline on the calling thread, in
/// ascending order. The jobs == 1 / threads == 1 reference everything
/// parallel is byte-compared against.
class InlineExecutor final : public Executor {
 public:
  int workers() const noexcept override { return 1; }
  void run_chunks(std::size_t n, std::size_t grain,
                  void (*fn)(void*, std::size_t, std::size_t),
                  void* ctx) override;
};

/// Persistent worker-thread pool. The calling thread participates in
/// every batch as lane 0, so ThreadPoolExecutor(k) gives k lanes with
/// k - 1 spawned threads; batches are claimed as dynamically-sized
/// chunks off a shared counter (work stealing degenerates to chunk
/// claiming when chunks are uniform, and rebalances when they are not).
class ThreadPoolExecutor final : public Executor {
 public:
  /// `threads` <= 0 resolves to the hardware thread count.
  explicit ThreadPoolExecutor(int threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  int workers() const noexcept override { return lanes_; }
  void run_chunks(std::size_t n, std::size_t grain,
                  void (*fn)(void*, std::size_t, std::size_t),
                  void* ctx) override;

  /// Lifetime-accumulated pool activity, for the `exec.*` counters and
  /// the per-lane `exec.worker<i>.wall_ms` gauges (lane 0 = callers).
  struct Diagnostics {
    std::uint64_t batches = 0;  ///< parallel run_chunks calls
    std::uint64_t tasks = 0;    ///< indices covered by those batches
    std::uint64_t chunks = 0;   ///< chunks claimed across all lanes
    std::vector<double> lane_busy_ms;  ///< busy wall time per lane
  };
  Diagnostics diagnostics() const;

 private:
  void worker_main(std::size_t lane);
  /// Claims and runs one chunk of the current batch; false when the
  /// batch has no unclaimed chunks left.
  bool claim_and_run(std::size_t lane);

  int lanes_ = 1;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers on a new batch
  std::condition_variable idle_cv_;  ///< batch setup waits for quiescence
  std::condition_variable done_cv_;  ///< caller waits for chunk completion
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  int active_ = 0;  ///< workers currently draining a batch

  // Current batch; written under mutex_ before generation_ bumps, read
  // by lanes that observed the bump (the next batch's setup waits for
  // active_ == 0, so reads never overlap the writes).
  void (*fn_)(void*, std::size_t, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::size_t chunk_count_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> done_chunks_{0};

  std::exception_ptr failure_;
  std::size_t failure_begin_ = 0;

  std::uint64_t diag_batches_ = 0;
  std::uint64_t diag_tasks_ = 0;
  std::atomic<std::uint64_t> diag_chunks_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_busy_ns_;
};

}  // namespace cavenet::exec

#endif  // CAVENET_UTIL_EXECUTOR_H
