#include "mac/wifi_mac.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace cavenet::mac {

using netsim::NodeId;
using netsim::Packet;

WifiMac::WifiMac(netsim::Simulator& sim, phy::WifiPhy& phy, MacParams params,
                 std::uint64_t rng_stream)
    : sim_(&sim),
      phy_(&phy),
      params_(params),
      rng_(sim.make_rng(0x6d61632000000000ULL ^ (rng_stream << 32) ^ phy.id())),
      cw_(params.cw_min) {
  phy_->set_cca_callback([this](bool busy) { on_cca(busy); });
  phy_->set_receive_callback([this](Packet p, double power) {
    on_phy_receive(std::move(p), power);
  });
  phy_->set_rx_error_callback([this] {
    eifs_until_ = sim_->now() + params_.eifs(ack_duration());
  });
}

void WifiMac::bind_stats(obs::StatsRegistry& registry) {
  obs_tx_data_ = registry.counter("mac.tx.data");
  obs_rx_up_ = registry.counter("mac.rx.up");
  obs_drop_ifq_ = registry.counter("mac.drop.ifq_full");
  obs_drop_retry_ = registry.counter("mac.drop.retry_limit");
  obs_tx_success_ = registry.counter("mac.tx.success");
  obs_retries_ = registry.counter("mac.retry");
  obs_ack_tx_ = registry.counter("mac.ack.sent");
  obs_rts_tx_ = registry.counter("mac.rts.sent");
  obs_cts_tx_ = registry.counter("mac.cts.sent");
  obs_dup_ = registry.counter("mac.dup.suppressed");
  obs_delay_access_ = registry.quantile("mac.delay.access");
}

SimTime WifiMac::ack_duration() const noexcept {
  MacHeader ack;
  ack.type = MacHeader::Type::kAck;
  return phy_->frame_duration(ack.size_bytes());
}

SimTime WifiMac::cts_duration() const noexcept { return ack_duration(); }

bool WifiMac::medium_busy() const noexcept {
  return phy_->cca_busy() || sim_->now() < nav_until_;
}

void WifiMac::set_nav(SimTime until) {
  if (until <= nav_until_) return;
  nav_until_ = until;
  on_medium_busy();
  sim_->schedule_at(until, "mac", [this] {
    if (sim_->now() >= nav_until_ && !phy_->cca_busy()) on_medium_idle();
  });
}

void WifiMac::on_cca(bool busy) {
  if (busy) {
    on_medium_busy();
  } else if (sim_->now() >= nav_until_) {
    on_medium_idle();
  }
}

void WifiMac::on_medium_busy() {
  access_timer_.cancel();
  if (in_countdown_) {
    // Freeze the backoff: whole slots elapsed since the countdown started
    // are consumed; the remainder resumes after the next DIFS-idle period.
    const std::int64_t consumed =
        (sim_->now() - countdown_start_) / params_.slot;
    backoff_slots_ = std::max<std::int32_t>(
        0, backoff_slots_ - static_cast<std::int32_t>(consumed));
    in_countdown_ = false;
  }
}

void WifiMac::on_medium_idle() {
  idle_since_ = sim_->now();
  access_attempt();
}

void WifiMac::send(Packet packet, NodeId dest) {
  enqueue(std::move(packet), dest, /*priority=*/false);
}

void WifiMac::send_priority(Packet packet, NodeId dest) {
  enqueue(std::move(packet), dest, /*priority=*/true);
}

void WifiMac::enqueue(Packet packet, NodeId dest, bool priority) {
  if (queue_.size() >= params_.queue_limit) {
    ++stats_.dropped_queue_full;
    obs_drop_ifq_.inc();
    if (log_ != nullptr) {
      log_->record(sim_->now(), netsim::PacketLog::Event::kDrop,
                   netsim::PacketLog::Layer::kMac, address(), packet.uid(),
                   "ifq-full", packet.size_bytes());
    }
    return;
  }
  ++stats_.enqueued;
  if (priority) {
    queue_.push_front(OutFrame{std::move(packet), dest, sim_->now()});
  } else {
    queue_.push_back(OutFrame{std::move(packet), dest, sim_->now()});
  }
  consume_idle_backoff();
  try_dequeue();
}

void WifiMac::consume_idle_backoff() {
  // Post-transmission backoff that already elapsed while the station was
  // idle with an empty queue counts as performed.
  if (current_ || backoff_slots_ <= 0 || in_countdown_ || medium_busy()) return;
  const SimTime idle_for = sim_->now() - idle_since_;
  const SimTime needed = params_.difs() + params_.slot * backoff_slots_;
  if (idle_for >= needed) backoff_slots_ = -1;
}

void WifiMac::try_dequeue() {
  if (current_ || queue_.empty()) return;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  retries_ = 0;
  cw_ = params_.cw_min;
  cts_received_ = false;
  if (!medium_busy()) access_attempt();
  // else: the busy->idle transition re-arms the access engine.
}

void WifiMac::access_attempt() {
  access_timer_.cancel();
  if (!current_ || wait_ack_ || wait_cts_) return;
  if (phy_->transmitting()) return;  // our own ACK/CTS is on the air
  if (medium_busy()) return;

  const SimTime idle_deadline =
      std::max(idle_since_ + params_.difs(), eifs_until_);
  const SimTime now = sim_->now();
  if (now < idle_deadline) {
    access_timer_ = sim_->schedule(idle_deadline - now, "mac",
                                   [this] { access_attempt(); });
    return;
  }
  if (backoff_slots_ > 0) {
    in_countdown_ = true;
    countdown_start_ = now;
    access_timer_ =
        sim_->schedule(params_.slot * backoff_slots_, "mac", [this] {
          in_countdown_ = false;
          backoff_slots_ = -1;
          transmit_current();
        });
    return;
  }
  backoff_slots_ = -1;
  transmit_current();
}

void WifiMac::transmit_current() {
  if (!current_) return;
  const bool unicast = !netsim::is_broadcast(current_->dest);
  const bool use_rts = params_.use_rts_cts && unicast &&
                       current_->payload.size_bytes() >
                           params_.rts_threshold_bytes &&
                       !cts_received_;
  if (use_rts) {
    // RTS reserves the medium through CTS + DATA + ACK.
    MacHeader data_probe;
    const SimTime data_time =
        phy_->frame_duration(current_->payload.size_bytes() +
                             data_probe.size_bytes());
    const SimTime reserve = params_.sifs + cts_duration() + params_.sifs +
                            data_time + params_.sifs + ack_duration();
    MacHeader rts;
    rts.type = MacHeader::Type::kRts;
    rts.src = address();
    rts.dst = current_->dest;
    rts.duration = reserve;
    Packet frame(0);
    frame.push(rts);
    ++stats_.rts_sent;
    obs_rts_tx_.inc();
    wait_cts_ = true;
    phy_->transmit(std::move(frame));
    const SimTime timeout = phy_->frame_duration(rts.size_bytes()) +
                            params_.sifs + cts_duration() + params_.slot * 2;
    ack_timer_ =
        sim_->schedule(timeout, "mac", [this] { handle_cts_timeout(); });
    return;
  }
  send_data_now();
}

void WifiMac::send_data_now() {
  const bool unicast = !netsim::is_broadcast(current_->dest);
  MacHeader header;
  header.type = MacHeader::Type::kData;
  header.src = address();
  header.dst = current_->dest;
  header.seq = seq_;
  header.retry = retries_ > 0;
  header.duration =
      unicast ? params_.sifs + ack_duration() : SimTime::zero();

  Packet frame = current_->payload;  // keep the original for retries
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kSend,
                 netsim::PacketLog::Layer::kMac, address(), frame.uid(),
                 frame.top_name(), frame.size_bytes() + header.size_bytes());
  }
  frame.push(header);
  ++stats_.data_tx_attempts;
  obs_tx_data_.inc();
  const SimTime tx_time = phy_->frame_duration(frame.size_bytes());
  phy_->transmit(std::move(frame));

  if (unicast) {
    wait_ack_ = true;
    const SimTime timeout =
        tx_time + params_.sifs + ack_duration() + params_.slot * 2;
    ack_timer_ =
        sim_->schedule(timeout, "mac", [this] { handle_ack_timeout(); });
  } else {
    ++seq_;
    sim_->schedule(tx_time, "mac", [this] {
      ++stats_.data_tx_success;
      obs_tx_success_.inc();
      complete_current();
    });
  }
}

void WifiMac::handle_cts_timeout() {
  wait_cts_ = false;
  ++stats_.retries;
  obs_retries_.inc();
  ++retries_;
  if (retries_ > params_.retry_limit) {
    fail_current();
    return;
  }
  retry_backoff();
}

void WifiMac::handle_ack_timeout() {
  wait_ack_ = false;
  ++stats_.retries;
  obs_retries_.inc();
  ++retries_;
  if (retries_ > params_.retry_limit) {
    fail_current();
    return;
  }
  retry_backoff();
}

void WifiMac::retry_backoff() {
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  backoff_slots_ = static_cast<std::int32_t>(rng_.uniform_int(cw_ + 1));
  cts_received_ = false;
  if (!medium_busy()) access_attempt();
}

void WifiMac::fail_current() {
  ++stats_.data_tx_failed;
  obs_drop_retry_.inc();
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kDrop,
                 netsim::PacketLog::Layer::kMac, address(),
                 current_->payload.uid(), "retry-limit",
                 current_->payload.size_bytes());
  }
  ++seq_;
  OutFrame failed = std::move(*current_);
  current_.reset();
  cw_ = params_.cw_min;
  retries_ = 0;
  draw_post_backoff();
  if (tx_failed_cb_) tx_failed_cb_(failed.payload, failed.dest);
  try_dequeue();
}

void WifiMac::complete_current() {
  // Failed frames (retry limit) are excluded: the access delay quantile
  // describes frames the MAC actually got onto the air.
  obs_delay_access_.observe((sim_->now() - current_->queued_at).sec());
  current_.reset();
  cw_ = params_.cw_min;
  retries_ = 0;
  draw_post_backoff();
  try_dequeue();
}

void WifiMac::draw_post_backoff() {
  backoff_slots_ = static_cast<std::int32_t>(rng_.uniform_int(cw_ + 1));
}

void WifiMac::send_control(MacHeader::Type type, NodeId dst,
                           SimTime duration) {
  MacHeader header;
  header.type = type;
  header.src = address();
  header.dst = dst;
  header.duration = duration;
  Packet frame(0);
  frame.push(header);
  phy_->transmit(std::move(frame));
}

void WifiMac::on_phy_receive(Packet packet, double rx_power_w) {
  (void)rx_power_w;
  eifs_until_ = SimTime::zero();  // a correct reception ends the EIFS rule
  // Const peek: the frame may share its header stack with every other
  // receiver of the broadcast, and classifying it must not detach.
  const MacHeader* peek = std::as_const(packet).peek<MacHeader>();
  if (peek == nullptr) return;  // not an 802.11 frame
  const MacHeader header = packet.pop<MacHeader>();

  switch (header.type) {
    case MacHeader::Type::kAck:
      if (header.dst == address() && wait_ack_ && current_) {
        wait_ack_ = false;
        ack_timer_.cancel();
        ++stats_.data_tx_success;
        obs_tx_success_.inc();
        ++seq_;
        complete_current();
      }
      break;

    case MacHeader::Type::kCts:
      if (header.dst == address() && wait_cts_ && current_) {
        wait_cts_ = false;
        cts_received_ = true;
        ack_timer_.cancel();
        sim_->schedule(params_.sifs, "mac", [this] {
          if (current_) send_data_now();
        });
      } else if (header.dst != address()) {
        set_nav(sim_->now() + header.duration);
      }
      break;

    case MacHeader::Type::kRts:
      if (header.dst == address()) {
        // Respond with CTS after SIFS; reservation shortened by RTS+SIFS.
        const SimTime remaining =
            header.duration - params_.sifs - cts_duration();
        sim_->schedule(params_.sifs, "mac", [this, src = header.src,
                                             remaining] {
          if (phy_->transmitting()) return;
          ++stats_.cts_sent;
          obs_cts_tx_.inc();
          send_control(MacHeader::Type::kCts, src,
                       std::max(remaining, SimTime::zero()));
        });
      } else {
        set_nav(sim_->now() + header.duration);
      }
      break;

    case MacHeader::Type::kData:
      handle_data(std::move(packet), header);
      break;
  }
}

void WifiMac::handle_data(Packet packet, const MacHeader& header) {
  if (header.dst == address()) {
    // ACK after SIFS, regardless of CCA (the standard mandates it).
    sim_->schedule(params_.sifs, "mac", [this, src = header.src] {
      if (phy_->transmitting()) return;  // pathological overlap
      ++stats_.acks_sent;
      obs_ack_tx_.inc();
      send_control(MacHeader::Type::kAck, src, SimTime::zero());
    });
    // Duplicate filtering (a retransmitted frame whose ACK was lost).
    auto& seen = seen_seqs_[header.src];
    if (std::find(seen.begin(), seen.end(), header.seq) != seen.end()) {
      ++stats_.duplicates_suppressed;
      obs_dup_.inc();
      return;
    }
    seen.push_back(header.seq);
    if (seen.size() > 16) seen.pop_front();
    ++stats_.delivered_up;
    obs_rx_up_.inc();
    if (log_ != nullptr) {
      log_->record(sim_->now(), netsim::PacketLog::Event::kReceive,
                   netsim::PacketLog::Layer::kMac, address(), packet.uid(),
                   packet.top_name(), packet.size_bytes());
    }
    if (receive_cb_) receive_cb_(std::move(packet), header.src);
    return;
  }
  if (netsim::is_broadcast(header.dst)) {
    ++stats_.delivered_up;
    obs_rx_up_.inc();
    if (log_ != nullptr) {
      log_->record(sim_->now(), netsim::PacketLog::Event::kReceive,
                   netsim::PacketLog::Layer::kMac, address(), packet.uid(),
                   packet.top_name(), packet.size_bytes());
    }
    if (receive_cb_) receive_cb_(std::move(packet), header.src);
    return;
  }
  // Overheard unicast meant for someone else: honour its NAV reservation.
  set_nav(sim_->now() + header.duration);
}

}  // namespace cavenet::mac
