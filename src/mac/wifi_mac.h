// IEEE 802.11 DCF MAC (Table I: IEEE802.11 DCF, 2 Mbps, RTS/CTS off).
//
// Implements CSMA/CA with binary exponential backoff, DIFS/SIFS timing,
// ACK-based retransmission for unicast, NAV virtual carrier sense from
// overheard durations, and optional RTS/CTS. Unicast frames that exhaust
// their retry budget trigger the tx-failed upcall that the routing
// protocols use for link-breakage detection.
#ifndef CAVENET_MAC_WIFI_MAC_H
#define CAVENET_MAC_WIFI_MAC_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "netsim/layers.h"
#include "netsim/packet_log.h"
#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "phy/wifi_phy.h"
#include "util/rng.h"

namespace cavenet::mac {

struct MacParams {
  SimTime slot = SimTime::microseconds(20);
  SimTime sifs = SimTime::microseconds(10);
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  /// Retransmission attempts for a unicast frame before giving up.
  std::uint32_t retry_limit = 7;
  /// Interface queue capacity (ns-2 ifq default).
  std::size_t queue_limit = 50;
  /// RTS/CTS exchange for unicast payloads larger than rts_threshold.
  bool use_rts_cts = false;
  std::size_t rts_threshold_bytes = 0;

  SimTime difs() const noexcept { return sifs + slot * 2; }
  /// Extended IFS after an erroneous reception: SIFS + ACK airtime + DIFS.
  /// `ack_airtime` comes from the PHY at runtime.
  SimTime eifs(SimTime ack_airtime) const noexcept {
    return sifs + ack_airtime + difs();
  }
};

/// 802.11 frame header. Wire sizes follow the standard: 24-byte data MAC
/// header + 4-byte FCS; 14-byte ACK/CTS; 20-byte RTS.
struct MacHeader final : netsim::HeaderBase<MacHeader> {
  enum class Type : std::uint8_t { kData, kAck, kRts, kCts };

  Type type = Type::kData;
  netsim::NodeId src = 0;
  netsim::NodeId dst = 0;
  std::uint16_t seq = 0;
  bool retry = false;
  /// NAV duration: medium time reserved after this frame ends.
  SimTime duration = SimTime::zero();

  std::size_t size_bytes() const override {
    switch (type) {
      case Type::kData: return 28;
      case Type::kAck:
      case Type::kCts: return 14;
      case Type::kRts: return 20;
    }
    return 28;
  }
  std::string_view name() const override {
    switch (type) {
      case Type::kData: return "80211-data";
      case Type::kAck: return "80211-ack";
      case Type::kRts: return "80211-rts";
      case Type::kCts: return "80211-cts";
    }
    return "80211";
  }
};

struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t data_tx_attempts = 0;
  std::uint64_t data_tx_success = 0;  ///< unicast acked or broadcast sent
  std::uint64_t data_tx_failed = 0;   ///< retry budget exhausted
  std::uint64_t retries = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t rts_sent = 0;
  std::uint64_t cts_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t delivered_up = 0;
};

class WifiMac final : public netsim::LinkLayer {
 public:
  WifiMac(netsim::Simulator& sim, phy::WifiPhy& phy, MacParams params = {},
          std::uint64_t rng_stream = 0);

  WifiMac(const WifiMac&) = delete;
  WifiMac& operator=(const WifiMac&) = delete;

  // LinkLayer:
  void send(netsim::Packet packet, netsim::NodeId dest) override;
  /// Control-frame fast path: enqueues at the head of the interface queue.
  void send_priority(netsim::Packet packet, netsim::NodeId dest) override;
  void set_receive_callback(ReceiveCallback cb) override {
    receive_cb_ = std::move(cb);
  }
  void set_tx_failed_callback(TxFailedCallback cb) override {
    tx_failed_cb_ = std::move(cb);
  }
  netsim::NodeId address() const override { return phy_->id(); }

  const MacStats& stats() const noexcept { return stats_; }

  /// Attaches an (optional, non-owning) packet event log.
  void set_packet_log(netsim::PacketLog* log) noexcept { log_ = log; }

  /// Binds this MAC's counters into a stats registry under "mac.*".
  /// All nodes bound to the same registry aggregate into shared counters;
  /// unbound MACs pay one discarded add per event.
  void bind_stats(obs::StatsRegistry& registry);

  const MacParams& params() const noexcept { return params_; }
  std::size_t queue_depth() const noexcept {
    return queue_.size() + (current_ ? 1 : 0);
  }

 private:
  struct OutFrame {
    netsim::Packet payload;
    netsim::NodeId dest;
    /// Enqueue time; successful completion observes now - queued_at as
    /// the per-hop MAC access delay (queueing + contention + retries).
    SimTime queued_at = SimTime::zero();
  };

  bool medium_busy() const noexcept;
  void on_cca(bool busy);
  void on_medium_busy();
  void on_medium_idle();
  void try_dequeue();
  void access_attempt();
  void transmit_current();
  void send_data_now();
  void handle_ack_timeout();
  void handle_cts_timeout();
  void fail_current();
  void complete_current();
  void draw_post_backoff();
  void retry_backoff();
  void consume_idle_backoff();
  void enqueue(netsim::Packet packet, netsim::NodeId dest, bool priority);
  void on_phy_receive(netsim::Packet packet, double rx_power_w);
  void handle_data(netsim::Packet packet, const MacHeader& header);
  void send_control(MacHeader::Type type, netsim::NodeId dst, SimTime duration);
  void set_nav(SimTime until);
  SimTime ack_duration() const noexcept;
  SimTime cts_duration() const noexcept;

  netsim::Simulator* sim_;
  phy::WifiPhy* phy_;
  MacParams params_;
  Rng rng_;

  std::deque<OutFrame> queue_;
  std::optional<OutFrame> current_;
  std::uint32_t cw_;
  std::uint32_t retries_ = 0;
  std::int32_t backoff_slots_ = -1;  ///< -1: none pending
  bool in_countdown_ = false;
  SimTime countdown_start_ = SimTime::zero();
  bool wait_ack_ = false;
  bool wait_cts_ = false;
  bool cts_received_ = false;
  SimTime idle_since_ = SimTime::zero();
  SimTime nav_until_ = SimTime::zero();
  /// After an erroneous reception, transmissions defer until at least this
  /// time (EIFS rule); cleared by the next correct reception.
  SimTime eifs_until_ = SimTime::zero();
  std::uint16_t seq_ = 0;

  netsim::EventId access_timer_;
  netsim::EventId ack_timer_;

  /// Receiver-side duplicate detection: last sequence numbers per source.
  std::map<netsim::NodeId, std::deque<std::uint16_t>> seen_seqs_;

  ReceiveCallback receive_cb_;
  TxFailedCallback tx_failed_cb_;
  netsim::PacketLog* log_ = nullptr;
  MacStats stats_;

  // Registry counters; mirror stats_ at the sites that also feed the
  // packet log, so "mac.*" reconciles exactly with PacketLog counts.
  obs::Counter obs_tx_data_;        ///< mac.tx.data   == count(kSend, kMac)
  obs::Counter obs_rx_up_;          ///< mac.rx.up     == count(kReceive, kMac)
  obs::Counter obs_drop_ifq_;       ///< mac.drop.ifq_full
  obs::Counter obs_drop_retry_;     ///< mac.drop.retry_limit
  obs::Counter obs_tx_success_;
  obs::Counter obs_retries_;
  obs::Counter obs_ack_tx_;
  obs::Counter obs_rts_tx_;
  obs::Counter obs_cts_tx_;
  obs::Counter obs_dup_;
  obs::Quantile obs_delay_access_;  ///< mac.delay.access (seconds)
};

}  // namespace cavenet::mac

#endif  // CAVENET_MAC_WIFI_MAC_H
