// Content-addressed result cache (docs/SERVING.md "Cache").
//
// Simulation is deterministic, so a result is fully determined by what
// produced it: cavenet-serve keys every unit of work on the engine-
// version-mixed FNV-1a spec fingerprint (plus the point index for
// campaign points — exactly the pair `cavenet-run --resume` already
// trusts) and stores the artifact FILES the unit wrote. A hit
// materializes the stored bytes back into the job's output directory,
// which makes cached results byte-identical to a fresh run by
// construction — no re-serialization, no re-simulation. Identical sweep
// points resubmitted by any tenant are therefore never simulated twice,
// and because spec::fingerprint_hex mixes kEngineSchemaVersion, a cache
// populated by an incompatible binary can never serve stale results.
//
// Layout: <root>/<key>/entry.json (file list + sizes) next to the
// artifact files themselves. Stores are staged into <root>/tmp/ and
// renamed into place, so readers never observe a half-written entry.
#ifndef CAVENET_SERVE_CACHE_H
#define CAVENET_SERVE_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cavenet::serve {

/// Cache key of one unit of work: the whole spec for figure-style kinds
/// ("<fingerprint>-all"), one campaign point ("<fingerprint>-p<index>").
std::string unit_cache_key(const std::string& spec_fingerprint,
                           bool whole_spec, std::size_t point_index);

class ResultCache {
 public:
  /// Creates `root` (and its staging dir) if missing.
  explicit ResultCache(std::string root);

  bool contains(const std::string& key) const;

  /// Copies the entry's files into `dst_dir`, returning their names and
  /// total bytes. False when the key is absent (or the entry is
  /// unreadable, which counts as a miss — the unit just re-runs).
  struct Materialized {
    std::vector<std::string> files;
    std::uint64_t bytes = 0;
  };
  bool materialize(const std::string& key, const std::string& dst_dir,
                   Materialized* out = nullptr);

  /// Stores `files` (paths relative to `src_dir`) under `key`
  /// atomically: staged copy, then rename. Returns the total bytes
  /// stored. Losing a store race to a concurrent worker is fine — the
  /// entries are byte-identical by construction — so the stage is
  /// discarded and the winner's entry stands.
  std::uint64_t store(const std::string& key, const std::string& src_dir,
                      const std::vector<std::string>& files);

  /// Deletes one entry (used by tests to force re-runs).
  void evict(const std::string& key);

  struct Totals {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  /// Walks the cache directory (entries + artifact bytes).
  Totals totals() const;

  const std::string& root() const noexcept { return root_; }

 private:
  std::string entry_dir(const std::string& key) const;

  std::string root_;
  /// Atomic: concurrent workers stage stores without coordination.
  std::atomic<std::uint64_t> stage_counter_{0};
};

}  // namespace cavenet::serve

#endif  // CAVENET_SERVE_CACHE_H
