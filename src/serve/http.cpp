#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace cavenet::serve {

namespace {

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// Writes all of `data`, retrying short writes. False on a broken pipe
/// (client went away — streaming responses use this to stop).
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::send(fd, data, size, MSG_NOSIGNAL);
    if (wrote <= 0) {
      if (wrote < 0 && errno == EINTR) continue;
      return false;
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

bool send_chunk(int fd, const std::string& chunk) {
  if (chunk.empty()) return true;
  char size_line[32];
  std::snprintf(size_line, sizeof size_line, "%zx\r\n", chunk.size());
  return send_all(fd, size_line, std::strlen(size_line)) &&
         send_all(fd, chunk) && send_all(fd, "\r\n", 2);
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return "";
}

std::string HttpRequest::query_param(const std::string& key,
                                     const std::string& fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (pair == key) return "";
    } else if (pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = end + 1;
  }
  return fallback;
}

std::vector<std::string> HttpRequest::segments() const {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    std::size_t end = path.find('/', pos);
    if (end == std::string::npos) end = path.size();
    if (end > pos) parts.push_back(path.substr(pos, end - pos));
    pos = end + 1;
  }
  return parts;
}

std::string http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("http: cannot create socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("http: cannot bind 127.0.0.1:") +
                             std::to_string(options_.port) + ": " +
                             std::strerror(err));
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Closing the listener unblocks accept(); ::shutdown first so a
  // concurrent accept() returns instead of racing the close.
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    workers.swap(connection_threads_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void HttpServer::serve_connection(int fd) {
  set_recv_timeout(fd, options_.recv_timeout_s);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  auto respond_error = [fd](int status, const std::string& message) {
    const std::string body =
        "{\"error\": \"" + message + "\"}\n";
    const std::string head =
        "HTTP/1.1 " + std::to_string(status) + " " +
        http_status_reason(status) +
        "\r\nContent-Type: application/json\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    send_all(fd, head);
    send_all(fd, body);
  };

  // Read the request head (request line + headers) up to the size cap.
  std::string buffer;
  std::size_t head_end = std::string::npos;
  char scratch[4096];
  while (head_end == std::string::npos) {
    if (buffer.size() > options_.max_head_bytes) {
      respond_error(431, "request head exceeds " +
                             std::to_string(options_.max_head_bytes) +
                             " bytes");
      ::close(fd);
      return;
    }
    const ssize_t got = ::recv(fd, scratch, sizeof scratch, 0);
    if (got <= 0) {
      ::close(fd);  // timeout, reset, or clean close before a full head
      return;
    }
    buffer.append(scratch, static_cast<std::size_t>(got));
    head_end = buffer.find("\r\n\r\n");
  }

  HttpRequest request;
  {
    const std::string head = buffer.substr(0, head_end);
    std::size_t line_start = 0;
    bool first = true;
    while (line_start <= head.size()) {
      std::size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      if (first) {
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 = line.rfind(' ');
        if (sp1 == std::string::npos || sp2 <= sp1) {
          respond_error(400, "malformed request line");
          ::close(fd);
          return;
        }
        request.method = line.substr(0, sp1);
        request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        first = false;
      } else if (!line.empty()) {
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
          request.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                                       trim(line.substr(colon + 1)));
        }
      }
      line_start = line_end + 2;
    }
  }
  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  request.query =
      qmark == std::string::npos ? "" : request.target.substr(qmark + 1);

  // Read the body per Content-Length (the only framing we accept).
  std::size_t content_length = 0;
  const std::string length_header = request.header("content-length");
  if (!length_header.empty()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(length_header));
    } catch (const std::exception&) {
      respond_error(400, "malformed content-length");
      ::close(fd);
      return;
    }
  }
  if (content_length > options_.max_body_bytes) {
    respond_error(413, "request body of " + std::to_string(content_length) +
                           " bytes exceeds the maximum of " +
                           std::to_string(options_.max_body_bytes) + " bytes");
    ::close(fd);
    return;
  }
  request.body = buffer.substr(head_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t got = ::recv(fd, scratch, sizeof scratch, 0);
    if (got <= 0) {
      ::close(fd);
      return;
    }
    request.body.append(scratch, static_cast<std::size_t>(got));
  }
  request.body.resize(content_length);

  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& error) {
    response = HttpResponse{};
    response.status = 500;
    response.body = std::string("{\"error\": \"") + error.what() + "\"}\n";
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     http_status_reason(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nConnection: close\r\n";
  if (response.chunks) {
    head += "Transfer-Encoding: chunked\r\n\r\n";
    if (!send_all(fd, head) || !send_chunk(fd, response.body)) {
      ::close(fd);
      return;
    }
    std::string chunk;
    while (response.chunks(&chunk)) {
      if (!send_chunk(fd, chunk)) break;  // client went away
      chunk.clear();
    }
    send_all(fd, "0\r\n\r\n", 5);
  } else {
    head += "Content-Length: " + std::to_string(response.body.size()) +
            "\r\n\r\n";
    if (send_all(fd, head)) send_all(fd, response.body);
  }
  ::close(fd);
}

HttpClientResponse http_request(
    int port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("http client: cannot connect to 127.0.0.1:" +
                             std::to_string(port) + ": " + std::strerror(err));
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
  for (const auto& [key, value] : headers) {
    request += key + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n" + body;
  if (!send_all(fd, request)) {
    ::close(fd);
    throw std::runtime_error("http client: send failed");
  }

  std::string raw;
  char scratch[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, scratch, sizeof scratch, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    raw.append(scratch, static_cast<std::size_t>(got));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 9, "HTTP/1.1 ") != 0) {
    throw std::runtime_error("http client: malformed response");
  }
  HttpClientResponse response;
  response.status = std::stoi(raw.substr(9, 3));
  const std::string head = to_lower(raw.substr(0, head_end));
  std::string payload = raw.substr(head_end + 4);
  if (head.find("transfer-encoding: chunked") != std::string::npos) {
    // De-chunk: <hex-size>\r\n<bytes>\r\n ... 0\r\n\r\n
    std::size_t pos = 0;
    for (;;) {
      const std::size_t line_end = payload.find("\r\n", pos);
      if (line_end == std::string::npos) break;
      const std::size_t size =
          static_cast<std::size_t>(std::stoull(payload.substr(pos, line_end - pos), nullptr, 16));
      if (size == 0) break;
      response.body += payload.substr(line_end + 2, size);
      pos = line_end + 2 + size + 2;  // skip the chunk's trailing CRLF
    }
  } else {
    response.body = std::move(payload);
  }
  return response;
}

}  // namespace cavenet::serve
