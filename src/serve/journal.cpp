#include "serve/journal.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace cavenet::serve {

JournalReplay replay_journal_text(std::string_view text) {
  JournalReplay replay;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t newline = text.find('\n', pos);
    if (newline == std::string_view::npos) {
      // No terminating newline: the append was torn mid-line.
      replay.truncated_tail = true;
      break;
    }
    const std::string_view line = text.substr(pos, newline - pos);
    try {
      obs::JsonValue record = obs::parse_json(line, "journal");
      if (!record.is_object()) throw std::runtime_error("not an object");
      replay.records.push_back(std::move(record));
    } catch (const std::exception&) {
      // Torn mid-record (the '\n' belongs to a later, lost write) or
      // external corruption: stop trusting the file here.
      replay.truncated_tail = true;
      break;
    }
    pos = newline + 1;
    replay.valid_bytes = pos;
  }
  return replay;
}

JournalReplay replay_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  return replay_journal_text(text);
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  JournalReplay replay = replay_journal_file(path_);
  replayed_ = std::move(replay.records);
  truncated_tail_ = replay.truncated_tail;
  if (replay.truncated_tail) {
    // Drop the torn tail before appending: a new record concatenated
    // onto a partial line would corrupt an otherwise-recoverable file.
    std::error_code ec;
    std::filesystem::resize_file(path_, replay.valid_bytes, ec);
    if (ec) {
      throw std::runtime_error("journal " + path_ +
                               ": cannot truncate torn tail: " + ec.message());
    }
  }
  file_.open(path_, std::ios::binary | std::ios::app);
  if (!file_.is_open()) {
    throw std::runtime_error("journal " + path_ + ": cannot open for append");
  }
}

void Journal::append(const obs::JsonValue& record) {
  file_ << obs::to_json(record) << '\n';
  // One flush per transition: after append() returns, only *later*
  // transitions can be lost to a kill. (An OS crash additionally needs
  // fsync; see docs/SERVING.md "Durability".)
  if (!file_.flush()) {
    throw std::runtime_error("journal " + path_ + ": append failed");
  }
  ++appended_;
}

}  // namespace cavenet::serve
