// Fair multi-tenant work queue (docs/SERVING.md "Queue").
//
// Workers pull individual POINTS, not whole jobs: each job contributes a
// FIFO of pending units, and the queue round-robins across the jobs that
// still have work. A 500-point campaign therefore cannot starve a
// 2-point job that arrived later — after at most one in-flight unit per
// worker, every active job makes progress. Cancellation drops a job's
// pending units in O(pending); units already claimed by a worker finish
// (their results still land in the cache, so nothing is wasted).
//
// This is in-memory state only: durability lives in the journal, which
// re-enqueues unfinished units on replay.
#ifndef CAVENET_SERVE_QUEUE_H
#define CAVENET_SERVE_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cavenet::serve {

/// One claimable unit of work: a campaign point (or a whole figure-style
/// spec, which is a single unit).
struct WorkItem {
  std::string job_id;
  std::size_t unit = 0;
};

class FairQueue {
 public:
  /// Appends `units` for `job_id` and wakes workers. A job may be pushed
  /// more than once (journal replay enqueues the unfinished remainder).
  void push(const std::string& job_id, const std::vector<std::size_t>& units);

  /// Blocks for the next unit, round-robin across jobs with pending
  /// work. Returns false once the queue is shut down — immediately,
  /// without draining: pending units stay pending, and journal replay
  /// re-enqueues them on the next startup.
  bool pop(WorkItem* item);

  /// Drops every pending unit of `job_id`; returns how many were
  /// dropped. In-flight units are the caller's to handle.
  std::size_t cancel(const std::string& job_id);

  /// Wakes every blocked pop() with "no more work ever".
  void shutdown();

  /// Pending (unclaimed) units across all jobs.
  std::size_t depth() const;

 private:
  struct JobLane {
    std::string job_id;
    std::deque<std::size_t> pending;
  };

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Round-robin ring: pop serves lanes_.front() and rotates it to the
  /// back while it still has pending units.
  std::deque<JobLane> lanes_;
  std::size_t depth_ = 0;
  bool shutdown_ = false;
};

}  // namespace cavenet::serve

#endif  // CAVENET_SERVE_QUEUE_H
