#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "spec/engine.h"
#include "spec/figures.h"

namespace cavenet::serve {

namespace fs = std::filesystem;

namespace {

obs::JsonValue jstr(std::string text) {
  obs::JsonValue value;
  value.kind = obs::JsonValue::Kind::kString;
  value.string = std::move(text);
  return value;
}

obs::JsonValue jnum(double number) {
  obs::JsonValue value;
  value.kind = obs::JsonValue::Kind::kNumber;
  value.number = number;
  return value;
}

obs::JsonValue jbool(bool boolean) {
  obs::JsonValue value;
  value.kind = obs::JsonValue::Kind::kBool;
  value.boolean = boolean;
  return value;
}

obs::JsonValue jobj() {
  obs::JsonValue value;
  value.kind = obs::JsonValue::Kind::kObject;
  return value;
}

obs::JsonValue jarr() {
  obs::JsonValue value;
  value.kind = obs::JsonValue::Kind::kArray;
  return value;
}

std::string slurp_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spill_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  if (!out.flush()) {
    throw std::runtime_error("cannot write " + path.string());
  }
}

std::string json_error_body(const std::string& message) {
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("error");
  writer.value(message);
  writer.end_object();
  return writer.str() + "\n";
}

/// Content type for a served artifact, by extension.
std::string artifact_content_type(const std::string& name) {
  if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".csv") == 0) {
    return "text/csv";
  }
  if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
    return "application/json";
  }
  if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".jsonl") == 0) {
    return "application/jsonl";
  }
  return "application/octet-stream";
}

bool terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

}  // namespace

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobService::JobService(ServiceOptions options) : options_(std::move(options)) {
  if (options_.state_dir.empty()) {
    throw std::runtime_error("serve: state_dir must not be empty");
  }
  fs::create_directories(fs::path(options_.state_dir) / "jobs");
  cache_ = std::make_unique<ResultCache>(
      (fs::path(options_.state_dir) / "cache").string());
  journal_ = std::make_unique<Journal>(
      (fs::path(options_.state_dir) / "journal.jsonl").string());
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
  } else {
    owned_executor_ = std::make_unique<exec::ThreadPoolExecutor>(
        exec::resolve_workers(options_.workers));
    executor_ = owned_executor_.get();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    replay_locked();
  }

  pump_ = std::thread([this] { worker_loop(); });

  HttpServerOptions http_options;
  http_options.port = options_.http_port;
  http_options.max_body_bytes = options_.max_body_bytes;
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return handle(request); },
      http_options);
}

JobService::~JobService() { stop(); }

void JobService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Order matters: stop admitting first, then stop the workers. Like a
  // crash, no terminal records are written for unfinished jobs — the
  // journal replay on the next start re-enqueues their pending units.
  if (http_) http_->stop();
  queue_.shutdown();
  if (pump_.joinable()) pump_.join();
}

void JobService::worker_loop() {
  const std::size_t lanes = static_cast<std::size_t>(executor_->workers());
  // Each pool lane runs a claim loop until shutdown. The Executor only
  // decides where the loops run; fairness across jobs is the queue's.
  executor_->parallel_for(lanes, 1, [this](std::size_t) {
    WorkItem item;
    while (queue_.pop(&item)) execute_unit(item);
  });
}

std::string JobService::job_dir_locked(const std::string& job_id) const {
  return (fs::path(options_.state_dir) / "jobs" / job_id).string();
}

std::string JobService::job_dir(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return job_dir_locked(job_id);
}

std::shared_ptr<JobService::Job> JobService::make_job_locked(
    const std::string& id, const std::string& spec_text,
    const std::string& source_name) {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->spec = spec::parse_campaign(spec_text, source_name);
  if (job->spec.kind == spec::SpecKind::kCampaign) {
    job->points = spec::expand_points(job->spec);
    job->units_total = job->points.size();
  } else {
    job->whole_spec = true;
    job->units_total = 1;
  }
  job->unit_done.assign(job->units_total, false);
  return job;
}

void JobService::enqueue_pending_locked(const std::shared_ptr<Job>& job) {
  if (!job->progress) {
    runner::ProgressOptions progress_options;
    progress_options.path =
        (fs::path(job_dir_locked(job->id)) / "progress.jsonl").string();
    progress_options.heartbeat_period_s = options_.heartbeat_period_s;
    progress_options.stall_after_s =
        options_.heartbeat_period_s > 0 ? options_.heartbeat_period_s * 6 : 0;
    job->progress = std::make_shared<runner::ProgressStream>(
        job->units_total, executor_->workers(), progress_options);
  }
  std::vector<std::size_t> pending;
  for (std::size_t unit = 0; unit < job->units_total; ++unit) {
    if (!job->unit_done[unit]) pending.push_back(unit);
  }
  if (pending.empty()) {
    finalize_locked(job);
    return;
  }
  queue_.push(job->id, pending);
}

void JobService::replay_locked() {
  for (const obs::JsonValue& record : journal_->replayed()) {
    const obs::JsonValue* kind = record.find("record");
    const obs::JsonValue* job_id = record.find("job");
    if (kind == nullptr || !kind->is_string() || job_id == nullptr ||
        !job_id->is_string()) {
      continue;
    }
    if (kind->string == "job_submitted") {
      // Keep job ids monotonic across restarts.
      if (job_id->string.size() > 1 && job_id->string[0] == 'j') {
        const std::size_t seq = static_cast<std::size_t>(
            std::strtoull(job_id->string.c_str() + 1, nullptr, 10));
        next_job_seq_ = std::max(next_job_seq_, seq + 1);
      }
      std::shared_ptr<Job> job;
      try {
        const std::string spec_text = slurp_file(
            fs::path(job_dir_locked(job_id->string)) / "spec.json");
        job = make_job_locked(job_id->string, spec_text,
                              job_id->string + "/spec.json");
      } catch (const std::exception& error) {
        job = std::make_shared<Job>();
        job->id = job_id->string;
        job->state = JobState::kFailed;
        job->error = std::string("spec unreadable on replay: ") + error.what();
      }
      jobs_.push_back(std::move(job));
      continue;
    }
    std::shared_ptr<Job> job;
    for (const std::shared_ptr<Job>& candidate : jobs_) {
      if (candidate->id == job_id->string) {
        job = candidate;
        break;
      }
    }
    if (!job) continue;
    if (kind->string == "point_done") {
      const obs::JsonValue* unit = record.find("unit");
      if (unit == nullptr || !unit->is_number()) continue;
      const std::size_t index = static_cast<std::size_t>(unit->number);
      if (index >= job->unit_done.size() || job->unit_done[index]) continue;
      job->unit_done[index] = true;
      ++job->units_done;
      const obs::JsonValue* cached = record.find("cached");
      if (cached != nullptr && cached->boolean) ++job->cache_hits;
      if (const obs::JsonValue* files = record.find("files");
          files != nullptr && files->is_array()) {
        for (const obs::JsonValue& file : files->array) {
          if (file.is_string()) job->files.push_back(file.string);
        }
      }
    } else if (kind->string == "job_done") {
      job->state = JobState::kDone;
      if (const obs::JsonValue* files = record.find("files");
          files != nullptr && files->is_array()) {
        job->files.clear();
        for (const obs::JsonValue& file : files->array) {
          if (file.is_string()) job->files.push_back(file.string);
        }
      }
    } else if (kind->string == "job_failed") {
      job->state = JobState::kFailed;
      if (const obs::JsonValue* error = record.find("error");
          error != nullptr && error->is_string()) {
        job->error = error->string;
      }
    } else if (kind->string == "job_cancelled") {
      job->state = JobState::kCancelled;
    }
  }

  // Re-enqueue every unfinished unit of every non-terminal job — the
  // crash-recovery contract: nothing finished is simulated twice,
  // nothing pending is lost.
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (terminal(job->state)) continue;
    const std::size_t pending = job->units_total - job->units_done;
    replayed_pending_units_ += pending;
    stats_.counter("serve.queue.replayed_units").inc(pending);
    enqueue_pending_locked(job);
  }
}

std::string JobService::submit(const std::string& spec_text) {
  // Enforce the untrusted-input limits before full validation; the spec
  // parser then re-reads the same bytes with its own diagnostics.
  obs::JsonParseLimits limits;
  limits.max_depth = options_.max_json_depth;
  limits.max_bytes = options_.max_body_bytes;
  obs::parse_json(spec_text, "submission", limits);

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) throw std::runtime_error("serve: service is stopping");
  const std::string id = "j" + std::to_string(next_job_seq_);
  // Validate before any durable state mutates.
  std::shared_ptr<Job> job = make_job_locked(id, spec_text, "submission");
  ++next_job_seq_;

  // Durability order: spec file first, then the journal record that
  // references it — replay never sees a job it cannot reconstruct.
  const fs::path dir = job_dir_locked(id);
  fs::create_directories(dir);
  spill_file(dir / "spec.json", spec_text);
  obs::JsonValue record = jobj();
  record.object.emplace_back("record", jstr("job_submitted"));
  record.object.emplace_back("job", jstr(id));
  record.object.emplace_back("name", jstr(job->spec.name));
  record.object.emplace_back("kind",
                             jstr(std::string(to_string(job->spec.kind))));
  record.object.emplace_back("fingerprint", jstr(job->spec.fingerprint));
  record.object.emplace_back("units",
                             jnum(static_cast<double>(job->units_total)));
  journal_->append(record);

  jobs_.push_back(job);
  stats_.counter("serve.jobs.submitted").inc();
  stats_.counter("serve.units.total").inc(job->units_total);
  enqueue_pending_locked(job);
  return id;
}

void JobService::execute_unit(const WorkItem& item) {
  std::shared_ptr<Job> job;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Job>& candidate : jobs_) {
      if (candidate->id == item.job_id) {
        job = candidate;
        break;
      }
    }
    if (!job || terminal(job->state)) return;
    job->state = JobState::kRunning;
    dir = job_dir_locked(job->id);
  }

  const spec::CampaignSpec& spec = job->spec;
  const std::string key =
      unit_cache_key(spec.fingerprint, job->whole_spec, item.unit);
  const std::string unit_name =
      job->whole_spec ? spec.name
                      : spec.name + "[" + std::to_string(item.unit) + "]";

  // Cache first: a hit materializes byte-identical artifacts without
  // simulating (the serve-side twin of --resume trusting checkpoints).
  ResultCache::Materialized materialized;
  bool hit = cache_->materialize(key, dir, &materialized);
  std::vector<std::string> files;
  std::uint64_t events = 0;
  std::uint64_t stored_bytes = 0;
  if (hit) {
    files = materialized.files;
    job->progress->point_resumed(item.unit, unit_name);
  } else {
    job->progress->point_started(item.unit, unit_name);
    try {
      if (job->whole_spec) {
        int rc = 0;
        if (spec.kind == spec::SpecKind::kGoodputSurface) {
          rc = spec::run_goodput_surface(spec, 1, dir);
        } else {
          rc = spec::run_fundamental_diagram(spec, 1, dir);
        }
        if (rc != 0) {
          throw std::runtime_error("spec run exited with code " +
                                   std::to_string(rc));
        }
        files = {spec.outputs.csv, spec.outputs.manifest};
      } else {
        const spec::PointArtifacts artifacts =
            spec::run_campaign_point(spec, job->points[item.unit], dir);
        files = artifacts.files;
        events = artifacts.events_dispatched;
      }
    } catch (const std::exception& error) {
      job->progress->point_failed(item.unit, unit_name, error.what());
      std::lock_guard<std::mutex> lock(mutex_);
      fail_locked(job, "unit " + std::to_string(item.unit) + " (" +
                           unit_name + "): " + error.what());
      return;
    }
    stored_bytes = cache_->store(key, dir, files);
    job->progress->point_finished(item.unit, unit_name, events);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (hit) {
    stats_.counter("serve.cache.hits").inc();
    stats_.counter("serve.cache.bytes_served").inc(materialized.bytes);
  } else {
    stats_.counter("serve.cache.misses").inc();
    stats_.counter("serve.cache.bytes_written").inc(stored_bytes);
    stats_.counter("serve.units.executed").inc();
  }
  // Cancelled (or failed) while we were running: the cache keeps the
  // result, but the job's story is over — no further journaling.
  if (terminal(job->state) || job->unit_done[item.unit]) return;

  obs::JsonValue record = jobj();
  record.object.emplace_back("record", jstr("point_done"));
  record.object.emplace_back("job", jstr(job->id));
  record.object.emplace_back("unit", jnum(static_cast<double>(item.unit)));
  record.object.emplace_back("cached", jbool(hit));
  obs::JsonValue file_list = jarr();
  for (const std::string& name : files) file_list.array.push_back(jstr(name));
  record.object.emplace_back("files", std::move(file_list));
  journal_->append(record);

  job->unit_done[item.unit] = true;
  ++job->units_done;
  if (hit) ++job->cache_hits;
  job->files.insert(job->files.end(), files.begin(), files.end());
  if (job->units_done == job->units_total) finalize_locked(job);
}

void JobService::finalize_locked(const std::shared_ptr<Job>& job) {
  if (job->spec.kind == spec::SpecKind::kCampaign) {
    // Rebuild the campaign CSV/summary from the on-disk point manifests
    // — the same single writer cavenet-run uses, so fresh, cached and
    // crash-resumed jobs all serialize byte-identically.
    spec::write_campaign_outputs(job->spec, job->points,
                                 job_dir_locked(job->id));
    job->files.push_back(job->spec.outputs.csv);
    job->files.push_back(job->spec.outputs.manifest);
  }
  job->state = JobState::kDone;
  if (job->progress) job->progress->campaign_finished();

  obs::JsonValue record = jobj();
  record.object.emplace_back("record", jstr("job_done"));
  record.object.emplace_back("job", jstr(job->id));
  obs::JsonValue file_list = jarr();
  for (const std::string& name : job->files) {
    file_list.array.push_back(jstr(name));
  }
  record.object.emplace_back("files", std::move(file_list));
  journal_->append(record);

  stats_.counter("serve.jobs.done").inc();
  jobs_cv_.notify_all();
}

void JobService::fail_locked(const std::shared_ptr<Job>& job,
                             const std::string& error) {
  if (terminal(job->state)) return;
  job->state = JobState::kFailed;
  job->error = error;
  queue_.cancel(job->id);

  obs::JsonValue record = jobj();
  record.object.emplace_back("record", jstr("job_failed"));
  record.object.emplace_back("job", jstr(job->id));
  record.object.emplace_back("error", jstr(error));
  journal_->append(record);

  stats_.counter("serve.jobs.failed").inc();
  jobs_cv_.notify_all();
}

bool JobService::cancel(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->id != job_id) continue;
    if (terminal(job->state)) return true;  // idempotent
    job->state = JobState::kCancelled;
    queue_.cancel(job_id);

    obs::JsonValue record = jobj();
    record.object.emplace_back("record", jstr("job_cancelled"));
    record.object.emplace_back("job", jstr(job_id));
    journal_->append(record);

    stats_.counter("serve.jobs.cancelled").inc();
    jobs_cv_.notify_all();
    return true;
  }
  return false;
}

bool JobService::wait(const std::string& job_id, double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::shared_ptr<Job> job;
  for (const std::shared_ptr<Job>& candidate : jobs_) {
    if (candidate->id == job_id) {
      job = candidate;
      break;
    }
  }
  if (!job) return false;
  return jobs_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s),
      [&job] { return terminal(job->state); });
}

obs::JsonValue JobService::job_status_locked(const Job& job) const {
  obs::JsonValue status = jobj();
  status.object.emplace_back("job", jstr(job.id));
  status.object.emplace_back("name", jstr(job.spec.name));
  status.object.emplace_back("kind",
                             jstr(std::string(to_string(job.spec.kind))));
  status.object.emplace_back("state",
                             jstr(std::string(to_string(job.state))));
  status.object.emplace_back("fingerprint", jstr(job.spec.fingerprint));
  status.object.emplace_back("units",
                             jnum(static_cast<double>(job.units_total)));
  status.object.emplace_back("units_done",
                             jnum(static_cast<double>(job.units_done)));
  status.object.emplace_back("cache_hits",
                             jnum(static_cast<double>(job.cache_hits)));
  if (!job.error.empty()) {
    status.object.emplace_back("error", jstr(job.error));
  }
  obs::JsonValue files = jarr();
  for (const std::string& name : job.files) files.array.push_back(jstr(name));
  status.object.emplace_back("files", std::move(files));
  return status;
}

obs::JsonValue JobService::job_status(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (job->id == job_id) return job_status_locked(*job);
  }
  throw std::out_of_range("serve: unknown job " + job_id);
}

std::vector<std::string> JobService::job_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(jobs_.size());
  for (const std::shared_ptr<Job>& job : jobs_) ids.push_back(job->id);
  return ids;
}

obs::StatsSnapshot JobService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.gauge("serve.queue.depth")
      .set(static_cast<double>(queue_.depth()));
  const ResultCache::Totals totals = cache_->totals();
  stats_.gauge("serve.cache.entries").set(static_cast<double>(totals.entries));
  stats_.gauge("serve.cache.bytes").set(static_cast<double>(totals.bytes));
  stats_.gauge("serve.jobs.total").set(static_cast<double>(jobs_.size()));
  return stats_.snapshot();
}

HttpResponse JobService::handle(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.counter("serve.http.requests").inc();
  }
  HttpResponse response;
  const std::vector<std::string> segments = request.segments();

  if (request.path == "/v1/healthz") {
    response.body = "{\"ok\": true}\n";
    return response;
  }
  if (request.path == "/v1/stats") {
    response.body = stats().to_json() + "\n";
    return response;
  }
  if (segments.size() < 2 || segments[0] != "v1" || segments[1] != "jobs") {
    response.status = 404;
    response.body = json_error_body("no such route: " + request.path);
    return response;
  }

  // POST /v1/jobs — submit; GET /v1/jobs — list.
  if (segments.size() == 2) {
    if (request.method == "POST") {
      std::string id;
      try {
        id = submit(request.body);
      } catch (const std::exception& error) {
        response.status = 422;
        response.body = json_error_body(error.what());
        return response;
      }
      response.status = 201;
      response.body = obs::to_json(job_status(id)) + "\n";
      return response;
    }
    if (request.method == "GET") {
      std::lock_guard<std::mutex> lock(mutex_);
      obs::JsonValue listing = jobj();
      obs::JsonValue entries = jarr();
      for (const std::shared_ptr<Job>& job : jobs_) {
        entries.array.push_back(job_status_locked(*job));
      }
      listing.object.emplace_back("jobs", std::move(entries));
      response.body = obs::to_json(listing) + "\n";
      return response;
    }
    response.status = 405;
    response.body = json_error_body("method not allowed");
    return response;
  }

  // Everything below addresses one job.
  const std::string& job_id = segments[2];
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Job>& candidate : jobs_) {
      if (candidate->id == job_id) {
        job = candidate;
        break;
      }
    }
  }
  if (!job) {
    response.status = 404;
    response.body = json_error_body("unknown job " + job_id);
    return response;
  }

  if (segments.size() == 3) {
    if (request.method == "GET") {
      std::lock_guard<std::mutex> lock(mutex_);
      response.body = obs::to_json(job_status_locked(*job)) + "\n";
      return response;
    }
    if (request.method == "DELETE") {
      cancel(job_id);
      std::lock_guard<std::mutex> lock(mutex_);
      response.body = obs::to_json(job_status_locked(*job)) + "\n";
      return response;
    }
    response.status = 405;
    response.body = json_error_body("method not allowed");
    return response;
  }

  if (segments[3] == "events" && segments.size() == 4) {
    // Chunked JSONL: the job's progress stream so far, then (with
    // ?follow=1) everything new until the job is terminal.
    const bool follow = request.query_param("follow", "0") == "1";
    auto offset = std::make_shared<std::size_t>(0);
    response.content_type = "application/jsonl";
    response.chunks = [this, job, offset, follow](std::string* chunk) {
      const std::string text = job->progress ? job->progress->jsonl() : "";
      if (*offset < text.size()) {
        *chunk = text.substr(*offset);
        *offset = text.size();
        return true;
      }
      bool done;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        done = terminal(job->state) || stopped_;
      }
      if (done || !follow) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return true;  // empty chunk: skipped on the wire, loop again
    };
    return response;
  }

  if (segments[3] == "results") {
    if (request.method != "GET") {
      response.status = 405;
      response.body = json_error_body("method not allowed");
      return response;
    }
    std::vector<std::string> files;
    std::string dir;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      files = job->files;
      dir = job_dir_locked(job_id);
    }
    if (segments.size() == 4) {
      obs::JsonValue listing = jobj();
      listing.object.emplace_back("job", jstr(job_id));
      obs::JsonValue entries = jarr();
      for (const std::string& name : files) {
        obs::JsonValue entry = jobj();
        entry.object.emplace_back("name", jstr(name));
        std::error_code ec;
        const auto size = fs::file_size(fs::path(dir) / name, ec);
        entry.object.emplace_back("bytes",
                                  jnum(ec ? 0.0 : static_cast<double>(size)));
        entries.array.push_back(std::move(entry));
      }
      listing.object.emplace_back("files", std::move(entries));
      response.body = obs::to_json(listing) + "\n";
      return response;
    }
    // GET .../results/<name>: whitelist-only — the name must match one
    // of the job's recorded artifacts exactly, so path traversal has no
    // surface.
    std::string name = segments[4];
    for (std::size_t i = 5; i < segments.size(); ++i) {
      name += "/" + segments[i];
    }
    if (std::find(files.begin(), files.end(), name) == files.end()) {
      response.status = 404;
      response.body = json_error_body("no such artifact: " + name);
      return response;
    }
    try {
      response.body = slurp_file(fs::path(dir) / name);
      response.content_type = artifact_content_type(name);
    } catch (const std::exception& error) {
      response.status = 500;
      response.body = json_error_body(error.what());
    }
    return response;
  }

  response.status = 404;
  response.body = json_error_body("no such route: " + request.path);
  return response;
}

}  // namespace cavenet::serve
