// Minimal embedded HTTP/1.1 server (docs/SERVING.md "API").
//
// cavenet-serve needs exactly enough HTTP to admit job submissions and
// stream results on a LAN: blocking POSIX sockets, one accept loop, one
// thread per connection, `Connection: close` per request, no TLS, no
// third-party dependencies. Untrusted input is bounded the same way the
// JSON parser is: request head and body sizes are capped (431/413), the
// read path times out instead of blocking forever, and the target line
// is split into path segments before any routing looks at it.
//
// Responses are either a complete body (Content-Length) or a chunked
// stream fed by a pull callback — the `/events` endpoint uses the
// latter to follow a job's progress JSONL live.
#ifndef CAVENET_SERVE_HTTP_H
#define CAVENET_SERVE_HTTP_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cavenet::serve {

struct HttpRequest {
  std::string method;  ///< uppercase ("GET", "POST", "DELETE", ...)
  std::string target;  ///< raw request target ("/v1/jobs/j1?follow=1")
  std::string path;    ///< target without the query string
  std::string query;   ///< query string without '?' ("" when absent)
  std::vector<std::pair<std::string, std::string>> headers;  ///< keys lowercased
  std::string body;

  /// First header named `name` (lowercase), or "" when absent.
  std::string header(const std::string& name) const;
  /// Value of `key` in the query string, or `fallback`.
  std::string query_param(const std::string& key,
                          const std::string& fallback = "") const;
  /// `path` split on '/' ("/v1/jobs/j1" -> {"v1", "jobs", "j1"}).
  std::vector<std::string> segments() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// When set, the response streams with Transfer-Encoding: chunked:
  /// the callback is polled for the next chunk (empty string chunks are
  /// skipped); returning false ends the stream. `body` is sent first as
  /// the initial chunk when non-empty.
  std::function<bool(std::string* chunk)> chunks;
};

/// Reason phrase for `status` ("200" -> "OK"); "Unknown" otherwise.
std::string http_status_reason(int status);

struct HttpServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// HttpServer::port()).
  int port = 0;
  std::size_t max_head_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Per-recv timeout; bounds how long a stalled client can pin a
  /// connection thread, and how often shutdown is observed.
  double recv_timeout_s = 10.0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds and starts accepting on a background thread. Throws
  /// std::runtime_error when the socket cannot be bound. The handler
  /// runs on connection threads and must be thread-safe.
  HttpServer(Handler handler, HttpServerOptions options);
  /// Stops accepting, closes the listener, and joins every connection
  /// thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the chosen one when options.port was 0).
  int port() const noexcept { return port_; }

  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  // Written by stop() while accept_loop() blocks on it -> atomic.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  bool stopping_ = false;
};

/// Blocking HTTP client for tests and tools: one request over a fresh
/// connection to 127.0.0.1:`port`. De-chunks chunked responses. Throws
/// std::runtime_error on connect/IO failure.
struct HttpClientResponse {
  int status = 0;
  std::string body;
};
HttpClientResponse http_request(int port, const std::string& method,
                                const std::string& target,
                                const std::string& body = "",
                                const std::vector<std::pair<std::string, std::string>>&
                                    headers = {});

}  // namespace cavenet::serve

#endif  // CAVENET_SERVE_HTTP_H
