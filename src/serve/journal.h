// Crash-safe append-only job journal (docs/SERVING.md "Journal").
//
// cavenet-serve records every job state transition as one JSON object
// per line in <state-dir>/journal.jsonl, flushed at append time. The
// journal is the queue's only durable state: a killed daemon replays it
// on startup and resumes exactly where it stopped, the same way
// `cavenet-run --resume` trusts point checkpoints. Because a crash can
// only tear the final line (appends are sequential), replay accepts a
// torn tail: it keeps every complete record, reports the byte offset
// where the valid prefix ends, and recovery truncates the file there
// before appending again. A malformed record *before* the tail means
// external corruption and is reported the same way — replay never
// throws on journal content, it just stops trusting the file at the
// first unparseable line.
#ifndef CAVENET_SERVE_JOURNAL_H
#define CAVENET_SERVE_JOURNAL_H

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace cavenet::serve {

/// Replay outcome: the complete records plus where the valid prefix of
/// the file ends (== file size when the journal is clean).
struct JournalReplay {
  std::vector<obs::JsonValue> records;
  std::size_t valid_bytes = 0;
  /// True when trailing bytes after the last complete record were
  /// discarded (torn tail or corruption).
  bool truncated_tail = false;
};

/// Parses `path` line by line, tolerating a torn tail. A missing file
/// replays as empty. Each kept record is a complete JSON object followed
/// by '\n'.
JournalReplay replay_journal_file(const std::string& path);

/// Same, over in-memory journal bytes (the truncation property tests
/// drive every byte boundary through this).
JournalReplay replay_journal_text(std::string_view text);

class Journal {
 public:
  /// Opens `path` for appending, first truncating it to the replayed
  /// valid prefix so a torn tail can never corrupt later records.
  explicit Journal(std::string path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record as a single line and flushes, so a kill after
  /// append() returns can only lose *later* transitions. Throws
  /// std::runtime_error when the write fails.
  void append(const obs::JsonValue& record);

  /// Records accepted from the on-disk file at open time.
  const std::vector<obs::JsonValue>& replayed() const noexcept {
    return replayed_;
  }
  bool truncated_tail() const noexcept { return truncated_tail_; }
  std::size_t appended() const noexcept { return appended_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::vector<obs::JsonValue> replayed_;
  bool truncated_tail_ = false;
  std::size_t appended_ = 0;
};

}  // namespace cavenet::serve

#endif  // CAVENET_SERVE_JOURNAL_H
