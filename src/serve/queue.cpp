#include "serve/queue.h"

namespace cavenet::serve {

void FairQueue::push(const std::string& job_id,
                     const std::vector<std::size_t>& units) {
  if (units.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JobLane* lane = nullptr;
    for (JobLane& candidate : lanes_) {
      if (candidate.job_id == job_id) {
        lane = &candidate;
        break;
      }
    }
    if (lane == nullptr) {
      lanes_.push_back({job_id, {}});
      lane = &lanes_.back();
    }
    lane->pending.insert(lane->pending.end(), units.begin(), units.end());
    depth_ += units.size();
  }
  work_cv_.notify_all();
}

bool FairQueue::pop(WorkItem* item) {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [this] { return depth_ > 0 || shutdown_; });
  // Shutdown wins over pending work: workers stop claiming immediately,
  // and whatever stays pending is re-enqueued from the journal on the
  // next startup (exactly the interrupted-job shape replay recovers).
  if (shutdown_) return false;
  // Serve the front lane and rotate it to the back: jobs with pending
  // work alternate regardless of their sizes.
  JobLane lane = std::move(lanes_.front());
  lanes_.pop_front();
  item->job_id = lane.job_id;
  item->unit = lane.pending.front();
  lane.pending.pop_front();
  --depth_;
  if (!lane.pending.empty()) lanes_.push_back(std::move(lane));
  return true;
}

std::size_t FairQueue::cancel(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    if (it->job_id == job_id) {
      const std::size_t dropped = it->pending.size();
      depth_ -= dropped;
      lanes_.erase(it);
      return dropped;
    }
  }
  return 0;
}

void FairQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
}

std::size_t FairQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace cavenet::serve
