#include "serve/cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace cavenet::serve {

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cache: cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spill(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  if (!out.flush()) {
    throw std::runtime_error("cache: cannot write " + path.string());
  }
}

}  // namespace

std::string unit_cache_key(const std::string& spec_fingerprint,
                           bool whole_spec, std::size_t point_index) {
  if (whole_spec) return spec_fingerprint + "-all";
  return spec_fingerprint + "-p" + std::to_string(point_index);
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {
  fs::create_directories(fs::path(root_) / "tmp");
}

std::string ResultCache::entry_dir(const std::string& key) const {
  return (fs::path(root_) / key).string();
}

bool ResultCache::contains(const std::string& key) const {
  return fs::exists(fs::path(entry_dir(key)) / "entry.json");
}

bool ResultCache::materialize(const std::string& key,
                              const std::string& dst_dir, Materialized* out) {
  const fs::path dir = entry_dir(key);
  Materialized result;
  try {
    const obs::JsonValue entry =
        obs::parse_json(slurp(dir / "entry.json"), "cache-entry");
    const obs::JsonValue* files = entry.find("files");
    if (files == nullptr || !files->is_array()) return false;
    for (const obs::JsonValue& file : files->array) {
      const obs::JsonValue* name = file.find("name");
      if (name == nullptr || !name->is_string()) return false;
      const std::string bytes = slurp(dir / name->string);
      spill(fs::path(dst_dir) / name->string, bytes);
      result.files.push_back(name->string);
      result.bytes += bytes.size();
    }
  } catch (const std::exception&) {
    return false;  // unreadable entry == miss; the unit re-runs
  }
  if (out != nullptr) *out = std::move(result);
  return true;
}

std::uint64_t ResultCache::store(const std::string& key,
                                 const std::string& src_dir,
                                 const std::vector<std::string>& files) {
  const fs::path stage =
      fs::path(root_) / "tmp" / (key + "." + std::to_string(stage_counter_++));
  fs::create_directories(stage);
  std::uint64_t total = 0;
  obs::JsonWriter entry;
  entry.begin_object();
  entry.key("key");
  entry.value(key);
  entry.key("files");
  entry.begin_array();
  for (const std::string& name : files) {
    const std::string bytes = slurp(fs::path(src_dir) / name);
    spill(stage / name, bytes);
    entry.begin_object();
    entry.key("name");
    entry.value(name);
    entry.key("bytes");
    entry.value(static_cast<std::uint64_t>(bytes.size()));
    entry.end_object();
    total += bytes.size();
  }
  entry.end_array();
  entry.end_object();
  // entry.json lands in the stage LAST, and the stage is renamed into
  // place as one operation: a reader either sees a complete entry or no
  // entry at all.
  spill(stage / "entry.json", entry.str());

  std::error_code ec;
  fs::rename(stage, entry_dir(key), ec);
  if (ec) {
    // Lost a race (or the entry already exists): the stored bytes are
    // identical by construction, so keep the winner and drop the stage.
    fs::remove_all(stage, ec);
  }
  return total;
}

void ResultCache::evict(const std::string& key) {
  std::error_code ec;
  fs::remove_all(entry_dir(key), ec);
}

ResultCache::Totals ResultCache::totals() const {
  Totals totals;
  std::error_code ec;
  for (const auto& dir : fs::directory_iterator(root_, ec)) {
    if (!dir.is_directory() || dir.path().filename() == "tmp") continue;
    if (!fs::exists(dir.path() / "entry.json")) continue;
    ++totals.entries;
    for (const auto& file : fs::directory_iterator(dir.path(), ec)) {
      if (file.is_regular_file() && file.path().filename() != "entry.json") {
        totals.bytes += file.file_size();
      }
    }
  }
  return totals;
}

}  // namespace cavenet::serve
