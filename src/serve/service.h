// JobService — the multi-tenant campaign job service (docs/SERVING.md).
//
// One service instance owns the four serve-layer pieces and wires them
// to the spec engine:
//
//   journal   crash-safe job state (replayed on start, like --resume)
//   queue     fair round-robin over each job's pending units
//   cache     content-addressed results keyed on spec fingerprints
//   workers   an exec::Executor pool pulling units off the queue
//
// A "unit" is one campaign point (campaign kind) or the whole spec
// (figure kinds, which the engine runs as one deterministic workload).
// Workers execute units through the exact code paths cavenet-run uses
// (spec::run_campaign_point, spec::run_goodput_surface, ...), into the
// job's own output directory, so a served job's artifacts are
// byte-identical to a direct `cavenet-run --output-dir` — whether the
// unit was simulated or materialized from the cache.
//
// Everything observable is published under the `serve.*` counter
// vocabulary (docs/OBSERVABILITY.md) and each job writes the standard
// runner::ProgressStream JSONL, streamed live over `GET .../events`.
#ifndef CAVENET_SERVE_SERVICE_H
#define CAVENET_SERVE_SERVICE_H

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats_registry.h"
#include "runner/executor.h"
#include "runner/progress.h"
#include "serve/cache.h"
#include "serve/http.h"
#include "serve/journal.h"
#include "serve/queue.h"
#include "spec/campaign.h"

namespace cavenet::serve {

struct ServiceOptions {
  /// Durable root: journal.jsonl, cache/, jobs/<id>/ live here.
  std::string state_dir;
  /// Worker lanes pulling units (<= 0 resolves to hardware threads).
  int workers = 2;
  /// HTTP port on 127.0.0.1; 0 binds an ephemeral port.
  int http_port = 0;
  /// Submission body cap, enforced by HTTP (413) and the JSON parser.
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Nesting-depth cap for submitted spec JSON (see obs::JsonParseLimits).
  std::size_t max_json_depth = 64;
  /// Per-job progress heartbeat/stall period; <= 0 disables the watchdog
  /// (tests); the daemon uses a few seconds.
  double heartbeat_period_s = 0.0;
  /// Optional externally-owned worker pool; the service builds its own
  /// ThreadPoolExecutor(workers) when null. This is the pluggable seam:
  /// an InlineExecutor serializes execution for deterministic tests.
  exec::Executor* executor = nullptr;
};

/// Job lifecycle, journaled at every transition.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

std::string_view to_string(JobState state) noexcept;

class JobService {
 public:
  /// Replays the journal (recovering interrupted jobs), starts the
  /// worker pool and the HTTP server. Throws on an unusable state dir or
  /// port.
  explicit JobService(ServiceOptions options);
  /// stop()s. Like a crash, stopping writes no terminal records: pending
  /// units are simply re-enqueued by the next replay.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Stops accepting HTTP, shuts the queue down (in-flight units finish,
  /// pending units stay journaled-but-unrun), and joins the workers.
  void stop();

  int port() const noexcept { return http_ ? http_->port() : 0; }

  // ---- in-process API (the HTTP handlers call these; tests may too) --

  /// Validates and enqueues one spec document; returns the job id.
  /// Throws SpecError / JsonParseError on an invalid submission.
  std::string submit(const std::string& spec_text);

  /// One job's status as a JSON object (see docs/SERVING.md for the
  /// shape). Throws std::out_of_range for an unknown id.
  obs::JsonValue job_status(const std::string& job_id) const;

  /// All jobs, in submission order (replayed jobs first).
  std::vector<std::string> job_ids() const;

  /// Cancels pending units and marks the job cancelled (unless already
  /// terminal). Returns false for an unknown id. In-flight units finish
  /// and still land in the cache.
  bool cancel(const std::string& job_id);

  /// Blocks until the job reaches a terminal state; false on timeout or
  /// unknown id.
  bool wait(const std::string& job_id, double timeout_s = 60.0);

  /// Absolute output directory of a job's artifacts.
  std::string job_dir(const std::string& job_id) const;

  /// Snapshot of the serve.* metrics.
  obs::StatsSnapshot stats() const;

  /// Units recovered from the journal at startup (pending re-runs).
  std::size_t replayed_pending_units() const noexcept {
    return replayed_pending_units_;
  }

  /// The HTTP routing surface, exposed for direct handler tests.
  HttpResponse handle(const HttpRequest& request);

 private:
  struct Job {
    std::string id;
    JobState state = JobState::kQueued;
    spec::CampaignSpec spec;
    std::vector<spec::CampaignPoint> points;  ///< campaign kind only
    bool whole_spec = false;  ///< figure kinds run as one unit
    std::size_t units_total = 0;
    std::size_t units_done = 0;
    std::size_t cache_hits = 0;
    std::vector<bool> unit_done;
    std::vector<std::string> files;  ///< artifacts, relative to job dir
    std::string error;
    std::shared_ptr<runner::ProgressStream> progress;
  };

  void replay_locked();
  std::shared_ptr<Job> make_job_locked(const std::string& id,
                                       const std::string& spec_text,
                                       const std::string& source_name);
  void enqueue_pending_locked(const std::shared_ptr<Job>& job);
  void finalize_locked(const std::shared_ptr<Job>& job);
  void fail_locked(const std::shared_ptr<Job>& job, const std::string& error);
  void worker_loop();
  void execute_unit(const WorkItem& item);
  std::string job_dir_locked(const std::string& job_id) const;
  obs::JsonValue job_status_locked(const Job& job) const;

  ServiceOptions options_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<ResultCache> cache_;
  FairQueue queue_;
  std::unique_ptr<exec::Executor> owned_executor_;
  exec::Executor* executor_ = nullptr;
  std::unique_ptr<HttpServer> http_;
  std::thread pump_;

  mutable std::mutex mutex_;
  mutable std::condition_variable jobs_cv_;  ///< notified on terminal states
  std::vector<std::shared_ptr<Job>> jobs_;   ///< submission order
  std::size_t next_job_seq_ = 1;
  std::size_t replayed_pending_units_ = 0;
  bool stopped_ = false;

  // serve.* metrics (single-threaded registry, guarded by mutex_).
  mutable obs::StatsRegistry stats_;
};

}  // namespace cavenet::serve

#endif  // CAVENET_SERVE_SERVICE_H
