// cavenet::spec — the declarative scenario & campaign description
// language (docs/SCENARIOS.md).
//
// A spec is one JSON document describing either a single figure-style
// workload ("goodput_surface", "fundamental_diagram") or a "campaign": a
// base scenario plus a sweep grid whose cartesian expansion the campaign
// runner executes as deterministic, checkpointed points. Until this
// layer, every workload was a hardcoded C++ bench binary; a spec opens a
// new workload without writing or building any C++.
//
// Parsing is schema-validated: unknown keys are rejected (with a
// did-you-mean suggestion), values are type- and range-checked, and every
// diagnostic names the offending spec path ("fig8.json: $.scenario
// .mobility.vehicles: ..."). Syntax errors carry line:column via
// obs::JsonParseError.
#ifndef CAVENET_SPEC_SPEC_H
#define CAVENET_SPEC_SPEC_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/grid_road.h"
#include "obs/json.h"
#include "scenario/table1.h"

namespace cavenet::spec {

/// Validation error: malformed value, unknown key, inconsistent spec.
/// (Syntax errors surface as obs::JsonParseError instead.)
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class SpecKind { kCampaign, kGoodputSurface, kFundamentalDiagram };

std::string_view to_string(SpecKind kind) noexcept;

/// Which mobility generator feeds the protocol stack.
enum class MobilityModel {
  kNas,   ///< single NaS lane, circular or open boundary (Table-I shape)
  kGrid,  ///< signalized Manhattan grid (core/grid_road.h)
};

/// Optional rigid placement transform applied to a generated NaS trace —
/// the paper's Section III-D lane transforms, driven from JSON. Applied
/// as translate * rotate * mirror (mirror first).
struct TransformSpec {
  double rotate_deg = 0.0;
  double translate_x = 0.0;
  double translate_y = 0.0;
  bool mirror_x = false;
};

/// One fully-resolved scenario: a Table-I-style protocol run over a
/// declaratively chosen mobility pattern. `config` carries everything
/// TableIConfig already models (seed, protocol, NaS lane, radio,
/// traffic); the extras select alternative mobility and the sender range
/// for surface workloads.
struct ScenarioSpec {
  scenario::TableIConfig config;

  MobilityModel mobility_model = MobilityModel::kNas;
  ca::GridRoadConfig grid;           ///< used when mobility_model == kGrid
  std::int64_t grid_trace_steps = 100;
  std::optional<TransformSpec> transform;  ///< NaS-only placement transform

  /// Sender range for kGoodputSurface (one run per sender, paper Fig. 8).
  netsim::NodeId first_sender = 1;
  netsim::NodeId last_sender = 8;

  /// Publish stats into the per-point RunManifest (campaign kind).
  bool collect_stats = true;
};

/// One sweep axis: a dotted path into the scenario object plus the values
/// the campaign substitutes there, e.g. {"param": "mobility.vehicles",
/// "values": [20, 30, 40]}.
struct SweepAxis {
  std::string param;
  std::vector<obs::JsonValue> values;
};

struct SweepSpec {
  std::int64_t replications = 1;
  std::vector<SweepAxis> axes;  ///< first axis varies slowest (row-major)
};

/// Parameters of the "fundamental_diagram" kind (paper Fig. 4): a
/// density ladder per slowdown probability, no protocol stack involved.
struct FundamentalDiagramSpec {
  std::int64_t lane_cells = 400;
  std::int32_t v_max = 5;
  double max_density = 0.5;
  std::int64_t points = 21;
  std::int64_t iterations = 500;
  std::int64_t trials = 20;
  std::int64_t warmup = 200;
  std::uint64_t seed = 4;
  std::vector<double> slowdown_ps{0.0, 0.5};
};

struct OutputSpec {
  std::string csv;       ///< default "<name>.csv"
  std::string manifest;  ///< default "<name>.manifest.json"
};

/// A parsed, validated spec document.
struct CampaignSpec {
  std::string name;
  std::string title;  ///< stdout banner; defaults to `name`
  SpecKind kind = SpecKind::kCampaign;

  ScenarioSpec scenario;       ///< kCampaign / kGoodputSurface
  FundamentalDiagramSpec fd;   ///< kFundamentalDiagram
  SweepSpec sweep;             ///< kCampaign only
  OutputSpec outputs;

  /// 16-hex-digit content hash of the canonicalized document. Embedded
  /// in every point manifest; checkpointed resume only trusts manifests
  /// whose fingerprint matches the spec being run.
  std::string fingerprint;

  /// The raw scenario object, kept for sweep patching: each campaign
  /// point clones this, substitutes its axis values, and re-parses.
  obs::JsonValue scenario_json;

  /// Where the spec came from ("<memory>" for string parses) — used in
  /// diagnostics.
  std::string source;
};

/// Parses and validates a spec document. `source_name` labels
/// diagnostics. Throws SpecError / obs::JsonParseError.
CampaignSpec parse_campaign(std::string_view json_text,
                            std::string source_name = "<memory>");

/// Reads, parses and validates a spec file. Throws std::runtime_error
/// when the file cannot be read.
CampaignSpec load_campaign_file(const std::string& path);

/// Parses one scenario object (used for the base scenario and for every
/// sweep-patched point). `path` prefixes diagnostics, e.g.
/// "fig8.json: $.scenario".
ScenarioSpec parse_scenario(const obs::JsonValue& value,
                            const std::string& path);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_SPEC_H
