// spec -> simulation wiring: materialize the mobility a ScenarioSpec
// describes and run its protocol stack. The NaS path without a transform
// goes through scenario::make_table1_trace / run_with_trace — exactly the
// code path the hardcoded benches use — so a spec that mirrors a bench's
// defaults reproduces that bench byte-for-byte.
#ifndef CAVENET_SPEC_BUILD_H
#define CAVENET_SPEC_BUILD_H

#include "core/lane_transform.h"
#include "obs/stats_registry.h"
#include "scenario/table1.h"
#include "spec/spec.h"
#include "trace/mobility_trace.h"

namespace cavenet::spec {

/// The affine matrix of a TransformSpec: translate * rotate * mirror
/// (mirror applied first).
ca::LaneTransform to_lane_transform(const TransformSpec& transform);

/// Applies a rigid transform in place: initial positions and event
/// targets move; speeds are preserved (the spec only exposes rigid
/// transforms, which never change segment lengths).
void transform_trace(trace::MobilityTrace& mobility,
                     const ca::LaneTransform& transform);

/// Builds the mobility trace `spec` describes. NaS mobility reuses
/// scenario::make_table1_trace (plus the optional transform); grid
/// mobility steps a signalized ca::GridRoad seeded with the scenario
/// seed.
trace::MobilityTrace build_trace(const ScenarioSpec& spec);

/// Runs the scenario's single flow (config.sender -> config.receiver)
/// once, publishing into `stats` when non-null. This is one campaign
/// point.
scenario::SenderRunResult run_point(const ScenarioSpec& spec,
                                    obs::StatsRegistry* stats);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_BUILD_H
