#include "spec/engine.h"

#include <cstdio>
#include <exception>
#include <filesystem>

#include "runner/ensemble.h"
#include "spec/campaign.h"
#include "spec/figures.h"

namespace cavenet::spec {

int run_spec(const CampaignSpec& spec, const RunOptions& options) {
  if (!options.output_dir.empty()) {
    std::filesystem::create_directories(options.output_dir);
  }
  switch (spec.kind) {
    case SpecKind::kGoodputSurface:
      return run_goodput_surface(spec, options.jobs, options.output_dir);
    case SpecKind::kFundamentalDiagram:
      return run_fundamental_diagram(spec, options.jobs, options.output_dir);
    case SpecKind::kCampaign: {
      CampaignOptions campaign_options;
      campaign_options.jobs = options.jobs;
      campaign_options.resume = options.resume;
      campaign_options.output_dir = options.output_dir;
      run_campaign(spec, campaign_options);
      return 0;
    }
  }
  return 2;
}

int run_spec_file(const std::string& path, const RunOptions& options) {
  return run_spec(load_campaign_file(path), options);
}

int bench_spec_main(const std::string& path, int argc,
                    const char* const* argv) {
  try {
    RunOptions options;
    options.jobs = runner::parse_jobs_flag(argc, argv);
    return run_spec_file(path, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace cavenet::spec
