#include "spec/engine.h"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>

#include "runner/ensemble.h"
#include "runner/progress.h"
#include "util/cli_args.h"
#include "spec/campaign.h"
#include "spec/figures.h"

namespace cavenet::spec {

int run_spec(const CampaignSpec& spec, const RunOptions& options) {
  // --threads overrides the spec's engine.parallel.threads for every run
  // this invocation dispatches (campaign points inherit the scenario
  // config). Results are byte-identical either way; only wall time moves.
  if (options.threads != 0 &&
      spec.scenario.config.parallel.threads != options.threads) {
    CampaignSpec adjusted = spec;
    adjusted.scenario.config.parallel.threads = options.threads;
    RunOptions inner = options;
    inner.threads = 0;
    return run_spec(adjusted, inner);
  }
  if (!options.output_dir.empty()) {
    std::filesystem::create_directories(options.output_dir);
  }
  switch (spec.kind) {
    case SpecKind::kGoodputSurface:
      return run_goodput_surface(spec, options.jobs, options.output_dir);
    case SpecKind::kFundamentalDiagram:
      return run_fundamental_diagram(spec, options.jobs, options.output_dir);
    case SpecKind::kCampaign: {
      CampaignOptions campaign_options;
      campaign_options.jobs = options.jobs;
      campaign_options.resume = options.resume;
      campaign_options.output_dir = options.output_dir;
      std::unique_ptr<runner::ProgressStream> progress;
      if (options.progress) {
        std::size_t total = static_cast<std::size_t>(
            spec.sweep.replications > 0 ? spec.sweep.replications : 1);
        for (const SweepAxis& axis : spec.sweep.axes) {
          total *= axis.values.size();
        }
        runner::ProgressOptions progress_options;
        progress_options.path = join_output_path(
            options.output_dir, spec.name + ".progress.jsonl");
        progress_options.echo_stdout = true;
        progress_options.heartbeat_period_s = options.progress_period_s;
        progress = std::make_unique<runner::ProgressStream>(
            total, options.jobs, progress_options);
        campaign_options.progress = progress.get();
      }
      run_campaign(spec, campaign_options);
      return 0;
    }
  }
  return 2;
}

int run_spec_file(const std::string& path, const RunOptions& options) {
  return run_spec(load_campaign_file(path), options);
}

int bench_spec_main(const std::string& path, int argc,
                    const char* const* argv) {
  try {
    const CliArgs args(argc, argv);
    RunOptions options;
    options.jobs =
        runner::resolve_jobs(static_cast<int>(args.get_int("jobs", 1)));
    options.threads = static_cast<int>(args.get_int("threads", 0));
    args.reject_unknown_flags();
    return run_spec_file(path, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace cavenet::spec
