// The figure-style spec kinds, ported verbatim from the bench drivers so
// a spec run writes byte-identical artifacts:
//
//  * goodput_surface — bench/bench_fig8/9/10 (one Table-I run per sender,
//    per-second goodput CSV + stripped RunManifest);
//  * fundamental_diagram — bench/bench_fig4 (density ladder per slowdown
//    probability, flow/stddev CSV).
//
// The benches are now thin wrappers that load a spec from
// examples/specs/ and land here; the golden-equivalence tests pin the
// byte compatibility.
#ifndef CAVENET_SPEC_FIGURES_H
#define CAVENET_SPEC_FIGURES_H

#include "spec/spec.h"

namespace cavenet::spec {

/// Runs the goodput surface `spec` describes (kind "goodput_surface"):
/// one run per sender first_sender..last_sender fanned over `jobs`
/// ensemble workers, the aggregate table on stdout, the full per-second
/// surface to outputs.csv and the stripped manifest to outputs.manifest
/// (both paths prefixed with `output_dir` when non-empty). Returns 0.
int run_goodput_surface(const CampaignSpec& spec, int jobs,
                        const std::string& output_dir = "");

/// Runs the fundamental-diagram sweep (kind "fundamental_diagram"): one
/// density ladder per slowdown probability, the Fig. 4 table on stdout
/// and outputs.csv, plus a stripped manifest to outputs.manifest.
/// Returns 0.
int run_fundamental_diagram(const CampaignSpec& spec, int jobs,
                            const std::string& output_dir = "");

/// `output_dir.empty() ? path : output_dir + "/" + path`.
std::string join_output_path(const std::string& output_dir,
                             const std::string& path);

/// "out/goodput_AODV.manifest.json" -> "goodput_AODV": the manifest
/// `name` a given output path implies (so spec runs serialize the same
/// name the hardcoded benches did).
std::string manifest_stem(const std::string& path);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_FIGURES_H
