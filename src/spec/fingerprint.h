// Content fingerprint of a spec document.
//
// Resume only trusts a checkpointed point manifest when it was produced
// by the *same* spec: every point manifest embeds the 64-bit FNV-1a hash
// of the canonically re-serialized document (obs::to_json — compact, key
// order preserved, doubles %.17g), rendered as 16 lowercase hex digits.
// Any edit that changes the document's canonical form — even whitespace
// stays out, but a value change always shows — invalidates the
// checkpoint.
#ifndef CAVENET_SPEC_FINGERPRINT_H
#define CAVENET_SPEC_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace cavenet::spec {

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// FNV-1a of the document's canonical serialization, as 16 hex digits.
std::string fingerprint_hex(const obs::JsonValue& document);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_FINGERPRINT_H
