// Content fingerprint of a spec document.
//
// Resume (and the cavenet-serve result cache) only trust a checkpointed
// point manifest when it was produced by the *same* spec AND the same
// engine: every point manifest embeds the 64-bit FNV-1a hash of an
// engine-version tag plus the canonically re-serialized document
// (obs::to_json — compact, key order preserved, doubles %.17g), rendered
// as 16 lowercase hex digits. Any edit that changes the document's
// canonical form — even whitespace stays out, but a value change always
// shows — invalidates the checkpoint, and so does bumping
// kEngineSchemaVersion, which guards cached results against
// kernel-affecting changes across binaries.
#ifndef CAVENET_SPEC_FINGERPRINT_H
#define CAVENET_SPEC_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"

namespace cavenet::spec {

/// Engine/schema version mixed into every fingerprint. Bump this whenever
/// a change alters what a previously fingerprinted point would simulate
/// or serialize (kernel arithmetic, RNG streams, manifest layout, spec
/// defaults): old checkpoints and cache entries then read as stale
/// everywhere fingerprints are compared, instead of being replayed as
/// results the current binary can no longer reproduce.
inline constexpr std::uint32_t kEngineSchemaVersion = 1;

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Continues a running FNV-1a hash over `bytes` (chained form of
/// fnv1a64; pass the previous return value as `hash`).
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t hash) noexcept;

/// FNV-1a of the engine-version tag plus the document's canonical
/// serialization, as 16 hex digits. `engine_version` exists so tests can
/// prove a version bump invalidates previously cached points; production
/// callers always use the default.
std::string fingerprint_hex(const obs::JsonValue& document,
                            std::uint32_t engine_version = kEngineSchemaVersion);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_FINGERPRINT_H
