#include "spec/figures.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fundamental_diagram.h"
#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

namespace cavenet::spec {

namespace {

std::string render_p(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", p);
  return buf;
}

}  // namespace

std::string manifest_stem(const std::string& path) {
  std::string stem = path;
  if (const std::size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem.erase(0, slash + 1);
  }
  for (const char* suffix : {".manifest.json", ".json"}) {
    const std::string s(suffix);
    if (stem.size() > s.size() &&
        stem.compare(stem.size() - s.size(), s.size(), s) == 0) {
      stem.erase(stem.size() - s.size());
      break;
    }
  }
  return stem;
}

std::string join_output_path(const std::string& output_dir,
                             const std::string& path) {
  if (output_dir.empty()) return path;
  return output_dir + "/" + path;
}

// GCC 12 reports a -Wmaybe-uninitialized false positive inside
// std::variant<std::string,...> when the row vectors below are built at
// -O2 (the std::string alternative is never the active member at the
// flagged sites). Suppress it for this translation unit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

int run_goodput_surface(const CampaignSpec& spec, int jobs,
                        const std::string& output_dir) {
  using namespace cavenet::scenario;

  TableIConfig config = spec.scenario.config;
  std::cout << spec.title << ": " << to_string(config.protocol)
            << " goodput, Table-I scenario\n"
            << "(30 nodes, 3000 m circuit, CBR 5 pkt/s x 512 B from sender "
               "-> node 0, t = 10..90 s)\n\n";

  obs::StatsRegistry stats;  // accumulates across the sender runs
  config.obs.stats = spec.scenario.collect_stats ? &stats : nullptr;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto results = run_all_senders(config, spec.scenario.first_sender,
                                       spec.scenario.last_sender, jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // 10-second aggregate columns keep the printed table readable; the CSV
  // below carries the full per-second series.
  TableWriter table({"sender", "t10-20", "t20-30", "t30-40", "t40-50",
                     "t50-60", "t60-70", "t70-80", "t80-90", "peak [bps]",
                     "PDR"});
  TableWriter csv({"sender", "second", "goodput_bps"});
  for (const auto& r : results) {
    std::vector<TableCell> row;
    row.reserve(11);  // also avoids a GCC 12 -Wmaybe-uninitialized false
                      // positive in std::variant during reallocation
    row.push_back(static_cast<std::int64_t>(r.sender));
    double peak = 0.0;
    for (int window = 1; window < 9; ++window) {
      double sum = 0.0;
      for (int s = window * 10; s < (window + 1) * 10; ++s) {
        const double v = r.goodput_bps[static_cast<std::size_t>(s)];
        sum += v;
        peak = std::max(peak, v);
      }
      row.push_back(sum / 10.0);
    }
    row.push_back(peak);
    row.push_back(r.pdr);
    table.add_row(std::move(row));
    for (std::size_t s = 0; s < r.goodput_bps.size(); ++s) {
      csv.add_row({static_cast<std::int64_t>(r.sender),
                   static_cast<std::int64_t>(s), r.goodput_bps[s]});
    }
  }
  table.print(std::cout);

  const std::string csv_path = join_output_path(output_dir, spec.outputs.csv);
  if (csv.write_csv_file(csv_path)) {
    std::cout << "\nFull per-second surface written to " << csv_path << "\n";
  }

  // One telemetry stream per sender run (each sender is its own
  // simulation). The streams contain only sim-time-keyed registry state,
  // so they are byte-identical at any --jobs value.
  if (config.telemetry.enabled()) {
    for (const auto& r : results) {
      const std::string telemetry_path = join_output_path(
          output_dir, spec.name + ".telemetry.s" +
                          std::to_string(r.sender) + ".jsonl");
      std::ofstream out(telemetry_path, std::ios::binary);
      out << r.telemetry_jsonl;
      if (!out.flush()) {
        std::cout << "cannot write telemetry " << telemetry_path << "\n";
      }
    }
    std::cout << "Telemetry streams written to "
              << join_output_path(output_dir,
                                  spec.name + ".telemetry.s<N>.jsonl")
              << " (" << results.size() << " senders)\n";
  }

  // Aggregate statistics the paper narrates.
  double total_rx = 0, total_tx = 0, max_goodput = 0;
  for (const auto& r : results) {
    total_rx += static_cast<double>(r.rx_packets);
    total_tx += static_cast<double>(r.tx_packets);
    for (const double v : r.goodput_bps) max_goodput = std::max(max_goodput, v);
  }
  const double cbr_bps = config.packets_per_second *
                         static_cast<double>(config.payload_bytes) * 8.0;
  std::printf(
      "\noverall PDR %.3f | peak goodput %.0f bps = %.1fx the CBR rate "
      "(%.0f bps)\n",
      total_tx > 0.0 ? total_rx / total_tx : 0.0, max_goodput,
      cbr_bps > 0.0 ? max_goodput / cbr_bps : 0.0, cbr_bps);

  std::printf("wall clock: %.2f s for %zu runs at --jobs %d\n", wall_s,
              results.size(), jobs);

  const std::string manifest_path =
      join_output_path(output_dir, spec.outputs.manifest);
  obs::RunManifest manifest = make_run_manifest(
      manifest_stem(spec.outputs.manifest), config, results, wall_s);
  manifest.set_param("senders",
                     std::to_string(spec.scenario.first_sender) + ".." +
                         std::to_string(spec.scenario.last_sender));
  manifest.set_metric("peak_goodput_bps", max_goodput);
  // Manifests are determinism artifacts: the same build + seed must
  // serialize byte-identically at any --jobs, so wall timing stays on
  // stdout only.
  manifest.strip_volatile();
  if (manifest.write_file(manifest_path)) {
    std::cout << "Run manifest written to " << manifest_path << "\n";
  }
  return 0;
}

int run_fundamental_diagram(const CampaignSpec& spec, int jobs,
                            const std::string& output_dir) {
  const FundamentalDiagramSpec& fd = spec.fd;

  std::cout << spec.title << ": fundamental diagram, L = " << fd.lane_cells
            << ", " << fd.trials << " trials x " << fd.iterations
            << " iterations per point\n\n";

  ca::FundamentalDiagramOptions options;
  options.params.lane_length = fd.lane_cells;
  options.params.v_max = fd.v_max;
  options.densities = ca::density_ladder(fd.lane_cells, fd.max_density,
                                         static_cast<std::size_t>(fd.points));
  options.iterations = fd.iterations;
  options.trials = fd.trials;
  options.warmup = fd.warmup;
  options.seed = fd.seed;
  options.jobs = jobs;

  std::vector<std::vector<ca::FundamentalDiagramPoint>> curves;
  curves.reserve(fd.slowdown_ps.size());
  for (const double p : fd.slowdown_ps) {
    options.params.slowdown_p = p;
    curves.push_back(ca::fundamental_diagram(options));
  }

  std::vector<std::string> columns{"rho"};
  for (const double p : fd.slowdown_ps) {
    columns.push_back("J (p=" + render_p(p) + ")");
    columns.push_back("sd");
  }
  columns.push_back("J theory (p=0)");
  TableWriter table(columns);
  for (std::size_t i = 0; i < curves.front().size(); ++i) {
    std::vector<TableCell> row;
    row.push_back(curves.front()[i].density);
    for (const auto& curve : curves) {
      row.push_back(curve[i].flow);
      row.push_back(curve[i].flow_stddev);
    }
    row.push_back(
        ca::deterministic_flow(curves.front()[i].density, fd.v_max));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const std::string csv_path = join_output_path(output_dir, spec.outputs.csv);
  table.write_csv_file(csv_path);

  obs::RunManifest manifest;
  manifest.name = manifest_stem(spec.outputs.manifest);
  manifest.seed = fd.seed;
  manifest.set_param("lane_cells", fd.lane_cells);
  manifest.set_param("v_max", static_cast<std::int64_t>(fd.v_max));
  manifest.set_param("max_density", fd.max_density);
  manifest.set_param("points", fd.points);
  manifest.set_param("iterations", fd.iterations);
  manifest.set_param("trials", fd.trials);
  manifest.set_param("warmup", fd.warmup);
  std::string ps;
  for (const double p : fd.slowdown_ps) {
    if (!ps.empty()) ps += ",";
    ps += render_p(p);
  }
  manifest.set_param("slowdown_p", ps);
  for (std::size_t c = 0; c < curves.size(); ++c) {
    double peak = 0.0, peak_rho = 0.0;
    for (const auto& point : curves[c]) {
      if (point.flow > peak) {
        peak = point.flow;
        peak_rho = point.density;
      }
    }
    const std::string suffix = "(p=" + render_p(fd.slowdown_ps[c]) + ")";
    manifest.set_metric("peak_flow" + suffix, peak);
    manifest.set_metric("peak_density" + suffix, peak_rho);
    std::printf("peak J%s = %.3f at rho = %.3f\n", suffix.c_str(), peak,
                peak_rho);
  }
  manifest.strip_volatile();
  manifest.write_file(join_output_path(output_dir, spec.outputs.manifest));
  return 0;
}

#pragma GCC diagnostic pop

}  // namespace cavenet::spec
