// The campaign runner: expands a spec's sweep grid into deterministic,
// checkpointed points and executes them over an ensemble worker pool.
//
// Expansion is the cartesian product of the sweep axes (first axis
// slowest) times `replications`. Each point patches the base scenario
// JSON with its axis values, re-parses (so every point is validated with
// the same diagnostics as the base), and draws its seed from a
// counter-based substream keyed on (cell, replication) — never on
// execution order, so any --jobs value and any resume pattern produce
// identical artifacts.
//
// Checkpointing: every completed point writes one stripped RunManifest
// (embedding the spec fingerprint) as soon as it finishes. A --resume
// run re-expands the spec, keeps every on-disk point manifest whose
// fingerprint matches, and only executes the rest. The campaign CSV is
// always rebuilt from the on-disk manifests in point order, which makes
// "interrupted + resumed" byte-identical to "uninterrupted" by
// construction.
#ifndef CAVENET_SPEC_CAMPAIGN_H
#define CAVENET_SPEC_CAMPAIGN_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "spec/spec.h"

namespace cavenet::runner {
class ProgressStream;
}  // namespace cavenet::runner

namespace cavenet::spec {

/// One expanded sweep point, ready to run.
struct CampaignPoint {
  std::size_t index = 0;        ///< global point id, 0..total-1
  std::size_t cell = 0;         ///< sweep-grid cell (axis combination)
  std::size_t replication = 0;  ///< replication within the cell
  /// Axis assignments of this cell, rendered for manifests/CSV
  /// ("mobility.vehicles" -> "40").
  std::vector<std::pair<std::string, std::string>> axis_values;
  /// Patched, re-validated scenario; config.seed is already the derived
  /// per-point substream seed.
  ScenarioSpec scenario;
};

/// Expands the sweep grid. Throws SpecError when a patched point fails
/// validation (the diagnostic names the point, e.g.
/// "...: $.scenario.mobility.vehicles [point 4]: ...").
std::vector<CampaignPoint> expand_points(const CampaignSpec& spec);

/// Relative path of point `index`'s checkpoint manifest,
/// "<name>.point_0007.manifest.json".
std::string point_manifest_path(const CampaignSpec& spec, std::size_t index);

/// Relative path of point `index`'s telemetry stream,
/// "<name>.point_0007.telemetry.jsonl" (written only when the scenario
/// enables obs.telemetry).
std::string point_telemetry_path(const CampaignSpec& spec, std::size_t index);

/// One point's failure, collected while the rest of the sweep drains.
struct PointFailure {
  std::size_t index = 0;
  std::string error;
};

/// Thrown by run_campaign after the worker pool drains when one or more
/// points failed. The message names every offending point id (so
/// cavenet-run's non-zero exit prints them), and the structured list is
/// available for programmatic callers (the job server marks the job
/// failed per point). Completed points keep their checkpoints, so a
/// --resume re-runs only the failures; the campaign CSV/summary are NOT
/// rebuilt from a partial sweep.
class CampaignError : public SpecError {
 public:
  CampaignError(const std::string& message,
                std::vector<PointFailure> failures);
  const std::vector<PointFailure>& failures() const noexcept {
    return failures_;
  }

 private:
  std::vector<PointFailure> failures_;
};

/// Artifacts one executed point wrote, as paths relative to the output
/// dir: the checkpoint manifest first, then the telemetry stream when
/// the scenario enables obs.telemetry.
struct PointArtifacts {
  std::vector<std::string> files;
  double pdr = 0.0;
  std::uint64_t events_dispatched = 0;
};

/// Runs one expanded point and writes its checkpoint manifest (and
/// telemetry stream) under `output_dir`. This is the single-point body
/// both run_campaign and the cavenet-serve worker pool execute, so
/// server-run points are byte-identical to cavenet-run's by
/// construction. Throws on simulation or write failure.
PointArtifacts run_campaign_point(const CampaignSpec& spec,
                                  const CampaignPoint& point,
                                  const std::string& output_dir);

/// Rebuilds outputs.csv and the campaign summary manifest from the
/// on-disk point manifests in point order (every point manifest must
/// exist under `output_dir`). Resumed, interrupted, cached, and fresh
/// campaigns all serialize identically because this is the only writer.
void write_campaign_outputs(const CampaignSpec& spec,
                            const std::vector<CampaignPoint>& points,
                            const std::string& output_dir);

struct CampaignOptions {
  int jobs = 1;
  bool resume = false;      ///< trust matching on-disk point manifests
  std::string output_dir;   ///< prefix for every artifact ("" = cwd)
  /// Optional, non-owning lifecycle/heartbeat sink (see runner/progress.h):
  /// the campaign reports point started/resumed/finished events into it.
  runner::ProgressStream* progress = nullptr;
};

struct CampaignOutcome {
  std::size_t points_total = 0;
  std::size_t points_run = 0;
  std::size_t points_resumed = 0;  ///< skipped via matching checkpoints
};

/// Runs (or resumes) the campaign: executes pending points across
/// options.jobs workers, writes one point manifest per point, rebuilds
/// outputs.csv from the manifests, and writes the campaign summary
/// manifest to outputs.manifest. When points fail, the remaining points
/// still run (their checkpoints land, so --resume only re-runs the
/// failures), then a CampaignError naming every failed point id is
/// thrown instead of rebuilding the outputs.
CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_CAMPAIGN_H
