#include "spec/fingerprint.h"

#include <cstdio>

namespace cavenet::spec {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string fingerprint_hex(const obs::JsonValue& document) {
  const std::uint64_t hash = fnv1a64(obs::to_json(document));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace cavenet::spec
