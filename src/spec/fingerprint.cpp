#include "spec/fingerprint.h"

#include <cstdio>

namespace cavenet::spec {

namespace {
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t hash) noexcept {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  return fnv1a64(bytes, kFnvBasis);
}

std::string fingerprint_hex(const obs::JsonValue& document,
                            std::uint32_t engine_version) {
  // The version rides as a textual tag so the hash input is
  // self-describing: "engine-v<N>\n" + canonical JSON.
  char tag[32];
  std::snprintf(tag, sizeof tag, "engine-v%u\n", engine_version);
  const std::uint64_t hash = fnv1a64(obs::to_json(document), fnv1a64(tag));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace cavenet::spec
