// Spec execution entry points: kind dispatch plus the shared main the
// thin bench wrappers use.
#ifndef CAVENET_SPEC_ENGINE_H
#define CAVENET_SPEC_ENGINE_H

#include <string>

#include "spec/spec.h"

namespace cavenet::spec {

struct RunOptions {
  int jobs = 1;             ///< ensemble workers; <= 0 = hardware threads
  /// Kernel executor lanes per run: overrides the spec's
  /// engine.parallel.threads when != 0 (<= -1 and explicit 0 both mean
  /// "hardware threads" at the kernel; 0 here means "keep the spec's
  /// value"). A pure performance knob — outputs are byte-identical at
  /// any value.
  int threads = 0;
  bool resume = false;      ///< campaigns: trust matching checkpoints
  std::string output_dir;   ///< artifact prefix ("" = cwd)
  /// Campaigns: stream per-point lifecycle events and heartbeats to
  /// "<name>.progress.jsonl" and (live) to stdout. See runner/progress.h.
  bool progress = false;
  /// Wall-clock heartbeat/stall-check period for --progress, in seconds.
  double progress_period_s = 5.0;
};

/// Dispatches on spec.kind. Returns a process exit code (0 on success).
int run_spec(const CampaignSpec& spec, const RunOptions& options);

/// load_campaign_file + run_spec.
int run_spec_file(const std::string& path, const RunOptions& options);

/// Shared main for the migrated bench binaries: parses `--jobs N` and
/// `--threads N` (the only flags; typos abort with a did-you-mean
/// diagnostic), runs the spec at `path`, and reports any failure on
/// stderr. Returns the exit code.
int bench_spec_main(const std::string& path, int argc,
                    const char* const* argv);

}  // namespace cavenet::spec

#endif  // CAVENET_SPEC_ENGINE_H
