#include "spec/campaign.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <mutex>

#include <fstream>

#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "runner/ensemble.h"
#include "runner/progress.h"
#include "scenario/run_record.h"
#include "spec/build.h"
#include "spec/figures.h"
#include "util/rng.h"
#include "util/table_writer.h"

namespace cavenet::spec {

namespace {

/// Seed material for the campaign's master stream ("camp").
constexpr std::uint64_t kCampaignStream = 0x63616d70;

std::string render_value(const obs::JsonValue& value) {
  return value.is_string() ? value.string : obs::to_json(value);
}

/// Sets `dotted` (e.g. "mobility.vehicles") inside `object`, creating
/// intermediate objects as needed.
void patch_json(obs::JsonValue& object, const std::string& dotted,
                const obs::JsonValue& value, const std::string& diag) {
  obs::JsonValue* node = &object;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = dotted.find('.', start);
    const std::string key = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (key.empty()) {
      throw SpecError(diag + ": malformed sweep param \"" + dotted + "\"");
    }
    obs::JsonValue* child = nullptr;
    for (auto& [name, member] : node->object) {
      if (name == key) {
        child = &member;
        break;
      }
    }
    if (child == nullptr) {
      node->object.emplace_back(key, obs::JsonValue{});
      child = &node->object.back().second;
      child->kind = obs::JsonValue::Kind::kObject;
    }
    if (dot == std::string::npos) {
      *child = value;
      return;
    }
    if (!child->is_object()) {
      throw SpecError(diag + ": sweep param \"" + dotted + "\" descends into " +
                      "a non-object at \"" + key + "\"");
    }
    node = child;
    start = dot + 1;
  }
}

}  // namespace

std::vector<CampaignPoint> expand_points(const CampaignSpec& spec) {
  if (spec.kind != SpecKind::kCampaign) {
    throw SpecError(spec.source + ": kind \"" +
                    std::string(to_string(spec.kind)) +
                    "\" has no sweep points to expand");
  }
  std::size_t cells = 1;
  for (const SweepAxis& axis : spec.sweep.axes) cells *= axis.values.size();
  const auto reps = static_cast<std::size_t>(spec.sweep.replications);

  const Rng master(spec.scenario.config.seed, kCampaignStream);
  std::vector<CampaignPoint> points;
  points.reserve(cells * reps);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    // Decode the cell id into per-axis indices, first axis slowest.
    std::vector<std::size_t> axis_index(spec.sweep.axes.size(), 0);
    std::size_t remainder = cell;
    for (std::size_t a = spec.sweep.axes.size(); a-- > 0;) {
      const std::size_t size = spec.sweep.axes[a].values.size();
      axis_index[a] = remainder % size;
      remainder /= size;
    }

    obs::JsonValue patched = spec.scenario_json;
    std::vector<std::pair<std::string, std::string>> axis_values;
    for (std::size_t a = 0; a < spec.sweep.axes.size(); ++a) {
      const SweepAxis& axis = spec.sweep.axes[a];
      const obs::JsonValue& value = axis.values[axis_index[a]];
      patch_json(patched, axis.param, value,
                 spec.source + ": $.sweep.axes[" + std::to_string(a) + "]");
      axis_values.emplace_back(axis.param, render_value(value));
    }

    const ScenarioSpec cell_scenario = parse_scenario(
        patched,
        spec.source + ": $.scenario[cell " + std::to_string(cell) + "]");
    if (cell_scenario.first_sender != cell_scenario.last_sender) {
      throw SpecError(spec.source + ": $.scenario[cell " +
                      std::to_string(cell) +
                      "]: campaign points run one flow; a sweep must not "
                      "introduce a sender range");
    }

    const Rng cell_rng = master.substream(cell);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      CampaignPoint point;
      point.index = cell * reps + rep;
      point.cell = cell;
      point.replication = rep;
      point.axis_values = axis_values;
      point.scenario = cell_scenario;
      // Counter-based: depends only on (base seed, cell, rep), never on
      // execution order — resumed and fresh runs agree byte-for-byte.
      point.scenario.config.seed = cell_rng.substream(rep).next_u64();
      points.push_back(std::move(point));
    }
  }
  return points;
}

std::string point_manifest_path(const CampaignSpec& spec, std::size_t index) {
  char suffix[40];
  std::snprintf(suffix, sizeof suffix, ".point_%04zu.manifest.json", index);
  return spec.name + suffix;
}

std::string point_telemetry_path(const CampaignSpec& spec, std::size_t index) {
  char suffix[40];
  std::snprintf(suffix, sizeof suffix, ".point_%04zu.telemetry.jsonl", index);
  return spec.name + suffix;
}

CampaignError::CampaignError(const std::string& message,
                             std::vector<PointFailure> failures)
    : SpecError(message), failures_(std::move(failures)) {}

PointArtifacts run_campaign_point(const CampaignSpec& spec,
                                  const CampaignPoint& point,
                                  const std::string& output_dir) {
  const std::string point_name =
      spec.name + "[" + std::to_string(point.index) + "]";
  obs::StatsRegistry stats;
  const scenario::SenderRunResult result = run_point(point.scenario, &stats);

  scenario::TableIConfig manifest_config = point.scenario.config;
  manifest_config.obs.stats = point.scenario.collect_stats ? &stats : nullptr;
  obs::RunManifest manifest =
      make_run_manifest(point_name, manifest_config, {result});
  manifest.set_param("spec_name", spec.name);
  manifest.set_param("spec_fingerprint", spec.fingerprint);
  manifest.set_param("point_index", static_cast<std::int64_t>(point.index));
  manifest.set_param("cell", static_cast<std::int64_t>(point.cell));
  manifest.set_param("replication",
                     static_cast<std::int64_t>(point.replication));
  for (const auto& [param, value] : point.axis_values) {
    manifest.set_param("sweep." + param, value);
  }
  // Checkpoint as soon as the point completes (any order; the CSV is
  // always rebuilt from the manifests in point order).
  manifest.strip_volatile();
  PointArtifacts artifacts;
  artifacts.pdr = result.pdr;
  artifacts.events_dispatched = result.events_dispatched;
  const std::string manifest_name = point_manifest_path(spec, point.index);
  const std::string path = join_output_path(output_dir, manifest_name);
  if (!manifest.write_file(path)) {
    throw std::runtime_error("cannot write point manifest " + path);
  }
  artifacts.files.push_back(manifest_name);
  if (!result.telemetry_jsonl.empty()) {
    const std::string telemetry_name = point_telemetry_path(spec, point.index);
    const std::string telemetry_path =
        join_output_path(output_dir, telemetry_name);
    std::ofstream out(telemetry_path, std::ios::binary);
    out << result.telemetry_jsonl;
    if (!out.flush()) {
      throw std::runtime_error("cannot write point telemetry " +
                               telemetry_path);
    }
    artifacts.files.push_back(telemetry_name);
  }
  return artifacts;
}

// Same GCC 12 -Wmaybe-uninitialized false positive as figures.cpp: the
// std::variant<std::string,...> TableCell rows below never have the
// string alternative active at the flagged sites.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

void write_campaign_outputs(const CampaignSpec& spec,
                            const std::vector<CampaignPoint>& points,
                            const std::string& output_dir) {
  // The CSV is always rebuilt from the on-disk manifests in point order,
  // so resumed and uninterrupted campaigns serialize identically.
  std::vector<std::string> columns{"point", "cell", "replication"};
  for (const SweepAxis& axis : spec.sweep.axes) columns.push_back(axis.param);
  for (const char* metric :
       {"seed", "tx_packets", "rx_packets", "pdr", "mean_delay_s",
        "mean_hop_count", "control_packets", "control_bytes",
        "mac_collisions", "mac_retries", "channel_utilization"}) {
    columns.emplace_back(metric);
  }
  TableWriter csv(columns);
  double pdr_sum = 0.0, pdr_min = 1e308, pdr_max = 0.0;
  for (const CampaignPoint& point : points) {
    const std::string path =
        join_output_path(output_dir, point_manifest_path(spec, point.index));
    const obs::RunManifest manifest = obs::RunManifest::read_file(path);
    std::vector<TableCell> row;
    row.push_back(static_cast<std::int64_t>(point.index));
    row.push_back(static_cast<std::int64_t>(point.cell));
    row.push_back(static_cast<std::int64_t>(point.replication));
    for (const auto& [param, value] : point.axis_values) {
      row.push_back(std::string(manifest.param("sweep." + param, value)));
    }
    // The expansion's seed, not manifest.seed: the manifest read path
    // goes through a JSON double, which cannot represent a full 64-bit
    // substream seed exactly.
    row.push_back(std::to_string(point.scenario.config.seed));
    for (const char* metric :
         {"tx_packets", "rx_packets", "pdr", "mean_delay_s",
          "mean_hop_count", "control_packets", "control_bytes",
          "mac_collisions", "mac_retries", "channel_utilization"}) {
      row.push_back(manifest.metric(metric));
    }
    csv.add_row(std::move(row));
    const double pdr = manifest.metric("pdr");
    pdr_sum += pdr;
    pdr_min = std::min(pdr_min, pdr);
    pdr_max = std::max(pdr_max, pdr);
  }
  const std::string csv_path = join_output_path(output_dir, spec.outputs.csv);
  if (!csv.write_csv_file(csv_path)) {
    throw std::runtime_error("cannot write campaign csv " + csv_path);
  }

  obs::RunManifest summary;
  summary.name = manifest_stem(spec.outputs.manifest);
  summary.seed = spec.scenario.config.seed;
  summary.sim_duration_s = spec.scenario.config.duration_s;
  summary.set_param("spec_name", spec.name);
  summary.set_param("spec_fingerprint", spec.fingerprint);
  summary.set_param("points", static_cast<std::int64_t>(points.size()));
  summary.set_param("replications", spec.sweep.replications);
  for (const SweepAxis& axis : spec.sweep.axes) {
    std::string values;
    for (const obs::JsonValue& value : axis.values) {
      if (!values.empty()) values += ",";
      values += render_value(value);
    }
    summary.set_param("axis." + axis.param, values);
  }
  if (!points.empty()) {
    summary.set_metric("mean_pdr",
                       pdr_sum / static_cast<double>(points.size()));
    summary.set_metric("min_pdr", pdr_min);
    summary.set_metric("max_pdr", pdr_max);
  }
  summary.strip_volatile();
  const std::string summary_path =
      join_output_path(output_dir, spec.outputs.manifest);
  if (!summary.write_file(summary_path)) {
    throw std::runtime_error("cannot write campaign manifest " + summary_path);
  }
}

#pragma GCC diagnostic pop

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options) {
  const std::vector<CampaignPoint> points = expand_points(spec);
  CampaignOutcome outcome;
  outcome.points_total = points.size();

  std::cout << spec.title << ": campaign \"" << spec.name << "\", "
            << points.size() << " points (";
  if (spec.sweep.axes.empty()) {
    std::cout << "no sweep axes";
  } else {
    for (std::size_t a = 0; a < spec.sweep.axes.size(); ++a) {
      std::cout << (a ? " x " : "") << spec.sweep.axes[a].param << "["
                << spec.sweep.axes[a].values.size() << "]";
    }
  }
  std::cout << " x " << spec.sweep.replications
            << " replications), fingerprint " << spec.fingerprint << "\n";

  // Resume scan: trust only manifests this exact spec produced.
  std::vector<bool> done(points.size(), false);
  if (options.resume) {
    for (const CampaignPoint& point : points) {
      const std::string path = join_output_path(
          options.output_dir, point_manifest_path(spec, point.index));
      try {
        const obs::RunManifest manifest = obs::RunManifest::read_file(path);
        if (manifest.param("spec_fingerprint") == spec.fingerprint &&
            manifest.param("point_index") == std::to_string(point.index)) {
          done[point.index] = true;
          ++outcome.points_resumed;
          if (options.progress != nullptr) {
            options.progress->point_resumed(
                point.index, spec.name + "[" + std::to_string(point.index) +
                                 "]");
          }
        } else {
          std::cout << "  stale checkpoint " << path << " (fingerprint "
                    << manifest.param("spec_fingerprint", "<none>")
                    << "), re-running point " << point.index << "\n";
        }
      } catch (const std::exception&) {
        // No (or unreadable) checkpoint: the point just runs.
      }
    }
    std::cout << "  resume: " << outcome.points_resumed << "/" << points.size()
              << " points checkpointed\n";
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }
  outcome.points_run = pending.size();

  runner::EnsembleOptions ensemble_options;
  ensemble_options.jobs = options.jobs;
  ensemble_options.master_seed = spec.scenario.config.seed;
  runner::EnsembleRunner pool(ensemble_options);
  std::mutex stdout_mutex;
  std::vector<PointFailure> failures;
  pool.for_each(pending.size(), [&](runner::ReplicationContext& ctx) {
    const CampaignPoint& point = points[pending[ctx.index]];
    const std::string point_name =
        spec.name + "[" + std::to_string(point.index) + "]";
    if (options.progress != nullptr) {
      options.progress->point_started(point.index, point_name);
    }
    PointArtifacts artifacts;
    try {
      artifacts = run_campaign_point(spec, point, options.output_dir);
    } catch (const std::exception& e) {
      // A failed point must not abort the sweep: the other points'
      // checkpoints still land (so --resume re-runs only the failures),
      // and every failure is reported — with its point id — after the
      // pool drains.
      if (options.progress != nullptr) {
        options.progress->point_failed(point.index, point_name, e.what());
      }
      const std::lock_guard<std::mutex> lock(stdout_mutex);
      failures.push_back({point.index, e.what()});
      std::fprintf(stderr, "  point %zu FAILED: %s\n", point.index, e.what());
      return;
    }
    if (options.progress != nullptr) {
      options.progress->point_finished(point.index, point_name,
                                       artifacts.events_dispatched);
    }

    const std::lock_guard<std::mutex> lock(stdout_mutex);
    std::printf("  point %zu/%zu cell %zu rep %zu seed %llu pdr %.3f\n",
                point.index + 1, points.size(), point.cell, point.replication,
                static_cast<unsigned long long>(point.scenario.config.seed),
                artifacts.pdr);
  });

  if (!failures.empty()) {
    std::sort(failures.begin(), failures.end(),
              [](const PointFailure& a, const PointFailure& b) {
                return a.index < b.index;
              });
    std::string message =
        "campaign \"" + spec.name + "\": " + std::to_string(failures.size()) +
        " of " + std::to_string(points.size()) + " points failed:";
    for (const PointFailure& failure : failures) {
      message +=
          " [point " + std::to_string(failure.index) + ": " + failure.error +
          "]";
    }
    throw CampaignError(message, std::move(failures));
  }

  write_campaign_outputs(spec, points, options.output_dir);
  const std::string csv_path =
      join_output_path(options.output_dir, spec.outputs.csv);
  const std::string summary_path =
      join_output_path(options.output_dir, spec.outputs.manifest);

  if (options.progress != nullptr) options.progress->campaign_finished();
  std::cout << "  " << outcome.points_run << " run, "
            << outcome.points_resumed << " resumed -> " << csv_path << ", "
            << summary_path << "\n";
  return outcome;
}

}  // namespace cavenet::spec
