#include "spec/build.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/grid_road.h"
#include "trace/trace_generator.h"
#include "util/executor.h"

namespace cavenet::spec {

ca::LaneTransform to_lane_transform(const TransformSpec& transform) {
  ca::LaneTransform matrix;
  if (transform.mirror_x) matrix = ca::LaneTransform::mirror_x() * matrix;
  if (transform.rotate_deg != 0.0) {
    constexpr double kPi = 3.14159265358979323846;
    matrix =
        ca::LaneTransform::rotation(transform.rotate_deg * kPi / 180.0) *
        matrix;
  }
  if (transform.translate_x != 0.0 || transform.translate_y != 0.0) {
    matrix = ca::LaneTransform::translation(transform.translate_x,
                                            transform.translate_y) *
             matrix;
  }
  return matrix;
}

void transform_trace(trace::MobilityTrace& mobility,
                     const ca::LaneTransform& transform) {
  for (Vec2& p : mobility.initial_positions) p = transform.apply(p);
  for (trace::TraceEvent& event : mobility.events) {
    event.target = transform.apply(event.target);
  }
}

trace::MobilityTrace build_trace(const ScenarioSpec& spec) {
  if (spec.mobility_model == MobilityModel::kGrid) {
    ca::GridRoadConfig grid_config = spec.grid;
    grid_config.seed = spec.config.seed;
    ca::GridRoad grid(grid_config);
    trace::TraceGeneratorOptions options;
    options.steps = spec.grid_trace_steps;
    options.pre_step = [&grid](ca::Road& road) { grid.apply_signals(road); };
    // A grid road is many independent lanes; fan their steps across the
    // scenario's executor lanes. The trace is identical at any count.
    std::unique_ptr<exec::ThreadPoolExecutor> pool;
    if (spec.config.parallel.threads != 1) {
      pool = std::make_unique<exec::ThreadPoolExecutor>(
          spec.config.parallel.threads);
      options.executor = pool.get();
    }
    return trace::generate_trace(grid.road(), options);
  }
  trace::MobilityTrace mobility = scenario::make_table1_trace(spec.config);
  if (spec.transform) {
    transform_trace(mobility, to_lane_transform(*spec.transform));
  }
  return mobility;
}

scenario::SenderRunResult run_point(const ScenarioSpec& spec,
                                    obs::StatsRegistry* stats) {
  scenario::TableIConfig config = spec.config;
  config.obs.stats = spec.collect_stats ? stats : nullptr;
  if (spec.mobility_model == MobilityModel::kNas && !spec.transform) {
    // Identical to the hardcoded benches' path (golden equivalence);
    // make_table1_trace also covers the ns-2 round trip.
    return scenario::run_table1(config);
  }
  const trace::MobilityTrace mobility = build_trace(spec);
  return scenario::run_with_trace(mobility, config, {config.sender}).front();
}

}  // namespace cavenet::spec
