#include "spec/spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "spec/fingerprint.h"
#include "util/logging.h"
#include "util/suggest.h"

namespace cavenet::spec {

namespace {

using obs::JsonValue;

std::string render_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

std::string lowercase(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "a boolean";
    case JsonValue::Kind::kNumber: return "a number";
    case JsonValue::Kind::kString: return "a string";
    case JsonValue::Kind::kArray: return "an array";
    case JsonValue::Kind::kObject: return "an object";
  }
  return "a value";
}

/// Cursor over one JSON object: typed, range-checked member access with
/// spec-path diagnostics, plus unknown-key rejection on finish().
class ObjectReader {
 public:
  ObjectReader(const JsonValue& value, std::string path)
      : value_(value), path_(std::move(path)) {
    if (!value_.is_object()) {
      throw SpecError(path_ + ": expected an object, got " +
                      kind_name(value_.kind));
    }
  }

  const std::string& path() const noexcept { return path_; }

  std::string member_path(const std::string& key) const {
    return path_ + "." + key;
  }

  /// Marks `key` as part of the schema and returns it when present.
  const JsonValue* find(const std::string& key) {
    known_.push_back(key);
    return value_.find(key);
  }

  bool has(const std::string& key) { return find(key) != nullptr; }

  bool get_bool(const std::string& key, bool fallback) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    if (v->kind != JsonValue::Kind::kBool) {
      throw SpecError(member_path(key) + ": expected a boolean, got " +
                      kind_name(v->kind));
    }
    return v->boolean;
  }

  double get_double(const std::string& key, double fallback, double min,
                    double max) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    return check_range(key, number_of(key, *v), min, max);
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback,
                       std::int64_t min, std::int64_t max) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    const double number = number_of(key, *v);
    if (number != std::floor(number)) {
      throw SpecError(member_path(key) + ": expected an integer, got " +
                      render_number(number));
    }
    return static_cast<std::int64_t>(
        check_range(key, number, static_cast<double>(min),
                    static_cast<double>(max)));
  }

  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    const double number = number_of(key, *v);
    if (number != std::floor(number) || number < 0) {
      throw SpecError(member_path(key) +
                      ": expected a non-negative integer, got " +
                      render_number(number));
    }
    return static_cast<std::uint64_t>(number);
  }

  std::string get_string(const std::string& key, std::string fallback) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_string()) {
      throw SpecError(member_path(key) + ": expected a string, got " +
                      kind_name(v->kind));
    }
    return v->string;
  }

  /// Lower-cased string member constrained to `choices`; diagnostics
  /// list the choices and suggest the closest one.
  std::string get_enum(const std::string& key, std::string fallback,
                       const std::vector<std::string>& choices) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    if (!v->is_string()) {
      throw SpecError(member_path(key) + ": expected a string, got " +
                      kind_name(v->kind));
    }
    const std::string choice = lowercase(v->string);
    if (std::find(choices.begin(), choices.end(), choice) != choices.end()) {
      return choice;
    }
    std::string all;
    for (const std::string& c : choices) {
      if (!all.empty()) all += ", ";
      all += "\"" + c + "\"";
    }
    throw SpecError(member_path(key) + ": \"" + v->string +
                    "\" is not one of " + all + did_you_mean(choice, choices));
  }

  /// Rejects members never named by a find()/get_*() call.
  void finish() const {
    for (const auto& [key, value] : value_.object) {
      if (std::find(known_.begin(), known_.end(), key) == known_.end()) {
        throw SpecError(member_path(key) + ": unknown key" +
                        did_you_mean(key, known_));
      }
    }
  }

 private:
  double number_of(const std::string& key, const JsonValue& v) const {
    if (!v.is_number()) {
      throw SpecError(member_path(key) + ": expected a number, got " +
                      kind_name(v.kind));
    }
    return v.number;
  }

  double check_range(const std::string& key, double value, double min,
                     double max) const {
    if (value < min || value > max) {
      throw SpecError(member_path(key) + ": " + render_number(value) +
                      " is out of range [" + render_number(min) + ", " +
                      render_number(max) + "]");
    }
    return value;
  }

  const JsonValue& value_;
  std::string path_;
  std::vector<std::string> known_;
};

constexpr double kInf = 1e308;
constexpr std::int64_t kMaxCells = 1'000'000'000;

scenario::Protocol parse_protocol(ObjectReader& r) {
  const std::string p = r.get_enum("protocol", "aodv",
                                   {"aodv", "olsr", "dymo", "dsdv"});
  if (p == "olsr") return scenario::Protocol::kOlsr;
  if (p == "dymo") return scenario::Protocol::kDymo;
  if (p == "dsdv") return scenario::Protocol::kDsdv;
  return scenario::Protocol::kAodv;
}

void parse_phy(ObjectReader& r, scenario::TableIConfig& config) {
  const std::string propagation =
      r.get_enum("propagation", "two_ray_ground",
                 {"two_ray_ground", "free_space", "shadowing", "rayleigh"});
  if (propagation == "free_space") {
    config.propagation = scenario::Propagation::kFreeSpace;
  } else if (propagation == "shadowing") {
    config.propagation = scenario::Propagation::kShadowing;
  } else if (propagation == "rayleigh") {
    config.propagation = scenario::Propagation::kRayleigh;
  } else {
    config.propagation = scenario::Propagation::kTwoRayGround;
  }
  config.shadowing_exponent =
      r.get_double("shadowing_exponent", config.shadowing_exponent, 1.0, 10.0);
  config.shadowing_sigma_db =
      r.get_double("shadowing_sigma_db", config.shadowing_sigma_db, 0.0, 30.0);
  config.channel_index =
      r.get_enum("index", "grid", {"grid", "linear"}) == "linear"
          ? phy::ChannelIndex::kLinear
          : phy::ChannelIndex::kGrid;
  r.finish();
}

void parse_mobility(ObjectReader& r, ScenarioSpec& spec) {
  scenario::TableIConfig& config = spec.config;
  const std::string model = r.get_enum("model", "nas", {"nas", "grid"});
  spec.mobility_model =
      model == "grid" ? MobilityModel::kGrid : MobilityModel::kNas;

  if (spec.mobility_model == MobilityModel::kNas) {
    config.lane_cells = r.get_int("lane_cells", config.lane_cells, 2, kMaxCells);
    config.vehicles = static_cast<std::int32_t>(
        r.get_int("vehicles", config.vehicles, 1, 1'000'000));
    config.slowdown_p = r.get_double("slowdown_p", config.slowdown_p, 0.0, 1.0);
    config.circular_layout =
        r.get_enum("boundary", "circular", {"circular", "open"}) == "circular";
    config.round_trip_trace_through_ns2_format =
        r.get_bool("ns2_round_trip", false);
    if (const obs::JsonValue* t = r.find("transform")) {
      ObjectReader tr(*t, r.member_path("transform"));
      TransformSpec transform;
      transform.rotate_deg =
          tr.get_double("rotate_deg", 0.0, -360.0, 360.0);
      transform.translate_x = tr.get_double("translate_x", 0.0, -kInf, kInf);
      transform.translate_y = tr.get_double("translate_y", 0.0, -kInf, kInf);
      transform.mirror_x = tr.get_bool("mirror_x", false);
      tr.finish();
      spec.transform = transform;
    }
  } else {
    if (const obs::JsonValue* g = r.find("grid")) {
      ObjectReader gr(*g, r.member_path("grid"));
      spec.grid.horizontal_lanes = static_cast<std::int32_t>(
          gr.get_int("horizontal_lanes", spec.grid.horizontal_lanes, 1, 64));
      spec.grid.vertical_lanes = static_cast<std::int32_t>(
          gr.get_int("vertical_lanes", spec.grid.vertical_lanes, 1, 64));
      spec.grid.block_cells =
          gr.get_int("block_cells", spec.grid.block_cells, 2, kMaxCells);
      spec.grid.vehicles_per_lane = gr.get_int(
          "vehicles_per_lane", spec.grid.vehicles_per_lane, 1, 100'000);
      spec.grid.green_period_steps = gr.get_int(
          "green_period_steps", spec.grid.green_period_steps, 1, kMaxCells);
      spec.grid.slowdown_p =
          gr.get_double("slowdown_p", spec.grid.slowdown_p, 0.0, 1.0);
      gr.finish();
    }
    spec.grid_trace_steps =
        r.get_int("trace_steps", spec.grid_trace_steps, 1, 1'000'000);
  }
  r.finish();
}

void parse_traffic(ObjectReader& r, ScenarioSpec& spec,
                   bool& has_sender_range) {
  scenario::TableIConfig& config = spec.config;
  config.packets_per_second =
      r.get_double("packets_per_second", config.packets_per_second, 1e-6, 1e6);
  config.payload_bytes = static_cast<std::size_t>(
      r.get_int("payload_bytes",
                static_cast<std::int64_t>(config.payload_bytes), 1, 65'536));
  config.traffic_start_s =
      r.get_double("start_s", config.traffic_start_s, 0.0, kInf);
  config.traffic_stop_s =
      r.get_double("stop_s", config.traffic_stop_s, 0.0, kInf);
  if (config.traffic_stop_s < config.traffic_start_s) {
    throw SpecError(r.member_path("stop_s") + ": stop_s (" +
                    render_number(config.traffic_stop_s) +
                    ") precedes start_s (" +
                    render_number(config.traffic_start_s) + ")");
  }
  config.receiver = static_cast<netsim::NodeId>(
      r.get_uint("receiver", config.receiver));

  const obs::JsonValue* senders = r.find("senders");
  const bool has_single = r.has("sender");
  if (senders != nullptr && has_single) {
    throw SpecError(r.member_path("senders") +
                    ": give either \"sender\" or \"senders\", not both");
  }
  if (senders != nullptr) {
    ObjectReader sr(*senders, r.member_path("senders"));
    spec.first_sender =
        static_cast<netsim::NodeId>(sr.get_uint("first", spec.first_sender));
    spec.last_sender =
        static_cast<netsim::NodeId>(sr.get_uint("last", spec.last_sender));
    sr.finish();
    if (spec.first_sender > spec.last_sender) {
      throw SpecError(r.member_path("senders") + ": first (" +
                      std::to_string(spec.first_sender) + ") > last (" +
                      std::to_string(spec.last_sender) + ")");
    }
    config.sender = spec.first_sender;
    has_sender_range = true;
  } else {
    config.sender =
        static_cast<netsim::NodeId>(r.get_uint("sender", config.sender));
    spec.first_sender = spec.last_sender = config.sender;
  }
  r.finish();
}

std::int64_t node_count(const ScenarioSpec& spec) {
  if (spec.mobility_model == MobilityModel::kGrid) {
    return static_cast<std::int64_t>(spec.grid.horizontal_lanes +
                                     spec.grid.vertical_lanes) *
           spec.grid.vehicles_per_lane;
  }
  return spec.config.vehicles;
}

FundamentalDiagramSpec parse_fd(const JsonValue& value,
                                const std::string& path) {
  ObjectReader r(value, path);
  FundamentalDiagramSpec fd;
  fd.lane_cells = r.get_int("lane_cells", fd.lane_cells, 2, kMaxCells);
  fd.v_max = static_cast<std::int32_t>(r.get_int("v_max", fd.v_max, 1, 1000));
  fd.max_density = r.get_double("max_density", fd.max_density, 0.0, 1.0);
  fd.points = r.get_int("points", fd.points, 1, 100'000);
  fd.iterations = r.get_int("iterations", fd.iterations, 1, kMaxCells);
  fd.trials = r.get_int("trials", fd.trials, 1, 1'000'000);
  fd.warmup = r.get_int("warmup", fd.warmup, 0, kMaxCells);
  fd.seed = r.get_uint("seed", fd.seed);
  if (const JsonValue* ps = r.find("slowdown_p")) {
    if (!ps->is_array() || ps->array.empty()) {
      throw SpecError(r.member_path("slowdown_p") +
                      ": expected a non-empty array of probabilities");
    }
    fd.slowdown_ps.clear();
    for (std::size_t i = 0; i < ps->array.size(); ++i) {
      const JsonValue& p = ps->array[i];
      if (!p.is_number() || p.number < 0.0 || p.number > 1.0) {
        throw SpecError(r.member_path("slowdown_p") + "[" +
                        std::to_string(i) +
                        "]: expected a probability in [0, 1]");
      }
      fd.slowdown_ps.push_back(p.number);
    }
  }
  r.finish();
  return fd;
}

SweepSpec parse_sweep(const JsonValue& value, const std::string& path) {
  ObjectReader r(value, path);
  SweepSpec sweep;
  sweep.replications = r.get_int("replications", 1, 1, 1'000'000);
  if (const JsonValue* axes = r.find("axes")) {
    if (!axes->is_array()) {
      throw SpecError(r.member_path("axes") + ": expected an array");
    }
    for (std::size_t i = 0; i < axes->array.size(); ++i) {
      const std::string axis_path =
          r.member_path("axes") + "[" + std::to_string(i) + "]";
      ObjectReader ar(axes->array[i], axis_path);
      SweepAxis axis;
      axis.param = ar.get_string("param", "");
      if (axis.param.empty()) {
        throw SpecError(axis_path + ": \"param\" is required");
      }
      if (axis.param == "seed") {
        throw SpecError(axis_path +
                        ": sweeping \"seed\" is not allowed; use "
                        "\"replications\" — each replication already draws "
                        "an independent substream seed");
      }
      const JsonValue* values = ar.find("values");
      if (values == nullptr || !values->is_array() || values->array.empty()) {
        throw SpecError(axis_path +
                        ": \"values\" must be a non-empty array");
      }
      axis.values = values->array;
      ar.finish();
      sweep.axes.push_back(std::move(axis));
    }
  }
  return sweep;
}

}  // namespace

std::string_view to_string(SpecKind kind) noexcept {
  switch (kind) {
    case SpecKind::kCampaign: return "campaign";
    case SpecKind::kGoodputSurface: return "goodput_surface";
    case SpecKind::kFundamentalDiagram: return "fundamental_diagram";
  }
  return "?";
}

ScenarioSpec parse_scenario(const obs::JsonValue& value,
                            const std::string& path) {
  ObjectReader r(value, path);
  ScenarioSpec spec;
  scenario::TableIConfig& config = spec.config;

  config.seed = r.get_uint("seed", config.seed);
  config.duration_s = r.get_double("duration_s", config.duration_s, 1e-9, kInf);

  bool has_sender_range = false;
  if (const obs::JsonValue* v = r.find("mobility")) {
    ObjectReader mr(*v, r.member_path("mobility"));
    parse_mobility(mr, spec);
  }
  if (const obs::JsonValue* v = r.find("phy")) {
    ObjectReader pr(*v, r.member_path("phy"));
    parse_phy(pr, config);
  }
  if (const obs::JsonValue* v = r.find("mac")) {
    ObjectReader mr(*v, r.member_path("mac"));
    config.mac_rate_bps =
        mr.get_double("rate_bps", config.mac_rate_bps, 1e3, 1e12);
    config.use_rts_cts = mr.get_bool("rts_cts", config.use_rts_cts);
    mr.finish();
  }
  if (const obs::JsonValue* v = r.find("routing")) {
    ObjectReader rr(*v, r.member_path("routing"));
    config.protocol = parse_protocol(rr);
    rr.finish();
  }
  if (const obs::JsonValue* v = r.find("engine")) {
    ObjectReader er(*v, r.member_path("engine"));
    // Kernel parallelism (docs/SCALING.md); results are byte-identical
    // at any (shards, threads) pair, so the whole block is a pure
    // performance knob and never part of the scenario's identity.
    netsim::ParallelConfig& par = config.parallel;
    const bool has_block = er.has("parallel");
    if (has_block) {
      ObjectReader pr(*er.find("parallel"), er.member_path("parallel"));
      par.shards = static_cast<int>(pr.get_int("shards", par.shards, 1, 4096));
      // 0 = one executor lane per hardware thread.
      par.threads =
          static_cast<int>(pr.get_int("threads", par.threads, 0, 4096));
      par.epoch_s = pr.get_double("epoch_s", par.epoch_s, 1e-9, kInf);
      pr.finish();
    }
    // Legacy flat keys, kept as validated aliases of engine.parallel.*
    // so checked-in specs keep parsing. Mixing a legacy key with the
    // parallel block is ambiguous and rejected; each use warns with the
    // modern spelling.
    const auto deprecated = [&](const std::string& key,
                                const char* modern) {
      if (!er.has(key)) return false;
      // The reader path carries the file-name prefix; the suggestion
      // re-anchors at "$" so the diagnostic names the file only once.
      std::string block = er.member_path("parallel");
      if (const auto dollar = block.find("$."); dollar != std::string::npos) {
        block.erase(0, dollar);
      }
      if (has_block) {
        throw SpecError(er.member_path(key) + ": deprecated alias of " +
                        block + "." + modern +
                        "; remove it — the spec already has a "
                        "\"parallel\" block");
      }
      log_line(LogLevel::kWarn, "spec",
               er.member_path(key) + " is deprecated; did you mean " + block +
                   "." + modern + "?");
      return true;
    };
    if (deprecated("shards", "shards")) {
      par.shards = static_cast<int>(er.get_int("shards", par.shards, 1, 4096));
    }
    if (deprecated("shard_epoch_s", "epoch_s")) {
      par.epoch_s = er.get_double("shard_epoch_s", par.epoch_s, 1e-9, kInf);
    }
    if (deprecated("threads", "threads")) {
      par.threads =
          static_cast<int>(er.get_int("threads", par.threads, 0, 4096));
    }
    er.finish();
  }
  if (const obs::JsonValue* v = r.find("traffic")) {
    ObjectReader tr(*v, r.member_path("traffic"));
    parse_traffic(tr, spec, has_sender_range);
  }
  if (const obs::JsonValue* v = r.find("obs")) {
    ObjectReader orr(*v, r.member_path("obs"));
    spec.collect_stats = orr.get_bool("stats", true);
    config.heartbeat_s = orr.get_double("heartbeat_s", 0.0, 0.0, kInf);
    if (const obs::JsonValue* t = orr.find("telemetry")) {
      ObjectReader tr(*t, orr.member_path("telemetry"));
      // period_s is required: a telemetry block that samples nothing is
      // a spec mistake, not a default to silently fill in.
      if (!tr.has("period_s")) {
        throw SpecError(orr.member_path("telemetry") +
                        ".period_s: a sampling period is required");
      }
      config.telemetry.period_s =
          tr.get_double("period_s", 0.0, 1e-9, kInf);
      config.telemetry.delta =
          tr.get_enum("mode", "full", {"full", "delta"}) == "delta";
      tr.finish();
      if (!spec.collect_stats) {
        throw SpecError(orr.member_path("telemetry") +
                        ": telemetry samples the stats registry; it "
                        "requires \"stats\": true");
      }
    }
    orr.finish();
  }
  r.finish();

  // Without an explicit "senders" range the scenario is a single flow
  // from config.sender (this also clears the struct's 1..8 defaults when
  // the traffic block is absent); parse_campaign enforces kind rules.
  if (!has_sender_range) {
    spec.first_sender = spec.last_sender = config.sender;
  }

  if (config.traffic_stop_s > config.duration_s) {
    throw SpecError(path + ".traffic.stop_s: traffic stops after the " +
                    render_number(config.duration_s) + " s simulation ends");
  }
  const std::int64_t nodes = node_count(spec);
  const auto check_node = [&](const char* what, netsim::NodeId id) {
    if (static_cast<std::int64_t>(id) >= nodes) {
      throw SpecError(path + ".traffic: " + what + " " + std::to_string(id) +
                      " is out of range for " + std::to_string(nodes) +
                      " nodes");
    }
  };
  check_node("receiver", config.receiver);
  check_node("sender", spec.first_sender);
  check_node("sender", spec.last_sender);
  if (spec.transform && spec.mobility_model != MobilityModel::kNas) {
    throw SpecError(path +
                    ".mobility.transform: only the NaS model supports "
                    "placement transforms");
  }
  return spec;
}

CampaignSpec parse_campaign(std::string_view json_text,
                            std::string source_name) {
  const obs::JsonValue doc = obs::parse_json(json_text, source_name);
  const std::string root_path = source_name + ": $";
  ObjectReader r(doc, root_path);

  CampaignSpec spec;
  spec.source = std::move(source_name);
  spec.name = r.get_string("name", "");
  if (spec.name.empty()) {
    throw SpecError(root_path + ".name: a non-empty name is required");
  }
  spec.title = r.get_string("title", spec.name);
  const std::string kind =
      r.get_enum("kind", "campaign",
                 {"campaign", "goodput_surface", "fundamental_diagram"});
  spec.kind = kind == "goodput_surface"   ? SpecKind::kGoodputSurface
              : kind == "fundamental_diagram" ? SpecKind::kFundamentalDiagram
                                              : SpecKind::kCampaign;

  const obs::JsonValue* scenario = r.find("scenario");
  const obs::JsonValue* fd = r.find("fundamental_diagram");
  const obs::JsonValue* sweep = r.find("sweep");

  if (spec.kind == SpecKind::kFundamentalDiagram) {
    if (scenario != nullptr || sweep != nullptr) {
      throw SpecError(root_path +
                      ": \"fundamental_diagram\" kind takes no scenario/sweep");
    }
    if (fd != nullptr) {
      spec.fd = parse_fd(*fd, root_path + ".fundamental_diagram");
    }
  } else {
    if (fd != nullptr) {
      throw SpecError(root_path + ".fundamental_diagram: only valid with " +
                      "\"kind\": \"fundamental_diagram\"");
    }
    if (scenario == nullptr) {
      throw SpecError(root_path + ": \"scenario\" is required for kind \"" +
                      kind + "\"");
    }
    spec.scenario_json = *scenario;
    spec.scenario = parse_scenario(*scenario, root_path + ".scenario");
    const bool is_range = spec.scenario.first_sender !=
                              spec.scenario.last_sender ||
                          spec.scenario.config.sender !=
                              spec.scenario.first_sender;
    if (spec.kind == SpecKind::kCampaign) {
      if (is_range) {
        throw SpecError(root_path +
                        ".scenario.traffic.senders: campaign points run one "
                        "flow each; use \"sender\" (sweep it to vary)");
      }
      if (sweep != nullptr) {
        spec.sweep = parse_sweep(*sweep, root_path + ".sweep");
      }
    } else if (sweep != nullptr) {
      throw SpecError(root_path + ".sweep: only valid with "
                      "\"kind\": \"campaign\"");
    }
  }

  if (const obs::JsonValue* outputs = r.find("outputs")) {
    ObjectReader out(*outputs, root_path + ".outputs");
    spec.outputs.csv = out.get_string("csv", "");
    spec.outputs.manifest = out.get_string("manifest", "");
    out.finish();
  }
  if (spec.outputs.csv.empty()) spec.outputs.csv = spec.name + ".csv";
  if (spec.outputs.manifest.empty()) {
    spec.outputs.manifest = spec.name + ".manifest.json";
  }
  r.finish();

  spec.fingerprint = fingerprint_hex(doc);
  return spec;
}

CampaignSpec load_campaign_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read spec file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_campaign(buffer.str(), path);
}

}  // namespace cavenet::spec
