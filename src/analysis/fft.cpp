#include "analysis/fft.h"

#include <numbers>
#include <stdexcept>

namespace cavenet::analysis {

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void bit_reverse_permute(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("FFT size must be a power of two");
  }
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft_in_place(std::span<std::complex<double>> data) {
  transform(data, /*inverse=*/false);
}

void ifft_in_place(std::span<std::complex<double>> data) {
  transform(data, /*inverse=*/true);
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  const std::size_t padded = next_power_of_two(std::max<std::size_t>(signal.size(), 1));
  std::vector<std::complex<double>> data(padded);
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  fft_in_place(data);
  return data;
}

}  // namespace cavenet::analysis
