// Spectral estimation: periodogram and Welch-averaged PSD.
//
// Used to reproduce the paper's Fig. 7: the periodogram of the average
// velocity stays bounded at f -> 0 for the deterministic NaS model (SRD)
// and diverges 1/f-like for the stochastic model (LRD).
#ifndef CAVENET_ANALYSIS_SPECTRUM_H
#define CAVENET_ANALYSIS_SPECTRUM_H

#include <span>
#include <vector>

namespace cavenet::analysis {

/// One-sided power spectral density estimate.
struct Spectrum {
  std::vector<double> frequency;  ///< in cycles/sample * sample_rate
  std::vector<double> power;      ///< PSD estimate at each frequency
};

enum class Window { kRectangular, kHann, kHamming };

/// Raw periodogram of `signal` (mean removed first). sample_rate in Hz.
/// Only strictly positive frequencies are returned (DC is dropped because
/// the mean was subtracted).
Spectrum periodogram(std::span<const double> signal, double sample_rate = 1.0,
                     Window window = Window::kRectangular);

/// Welch's method: averaged modified periodograms over 50%-overlapping
/// segments of length `segment` (rounded up to a power of two).
Spectrum welch_psd(std::span<const double> signal, std::size_t segment,
                   double sample_rate = 1.0, Window window = Window::kHann);

/// Least-squares slope of log10(power) vs log10(frequency) over the lowest
/// `fraction` of the spectrum. A slope near 0 indicates SRD; a slope near
/// -1 indicates 1/f (LRD) behaviour. This is the quantitative form of the
/// paper's "the periodogram diverges at the origin" observation.
double low_frequency_slope(const Spectrum& spectrum, double fraction = 0.1);

}  // namespace cavenet::analysis

#endif  // CAVENET_ANALYSIS_SPECTRUM_H
