// Streaming and batch descriptive statistics.
#ifndef CAVENET_ANALYSIS_STATS_H
#define CAVENET_ANALYSIS_STATS_H

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace cavenet::analysis {

/// Welford single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample (n-1) variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a sample (0 for empty).
double mean(std::span<const double> xs) noexcept;
/// Sample variance (n-1 denominator; 0 for fewer than two samples).
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
/// Linearly-interpolated quantile, q in [0, 1]. Sorts a copy.
double quantile(std::span<const double> xs, double q);

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so no sample is lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  /// Center of the given bin.
  double bin_center(std::size_t bin) const;
  /// Normalized density in the given bin (counts / total / bin_width).
  double density(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cavenet::analysis

#endif  // CAVENET_ANALYSIS_STATS_H
