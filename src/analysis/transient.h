// Transient-time estimation for simulation warm-up removal.
//
// Section IV-B of the paper measures the transient time tau of the average
// velocity before it settles into the stationary regime, which decides how
// many initial samples must be discarded before protocol evaluation.
#ifndef CAVENET_ANALYSIS_TRANSIENT_H
#define CAVENET_ANALYSIS_TRANSIENT_H

#include <cstddef>
#include <optional>
#include <span>

namespace cavenet::analysis {

struct TransientOptions {
  /// Fraction of the tail assumed stationary, used to estimate the
  /// steady-state level and spread.
  double tail_fraction = 0.25;
  /// The transient ends at the first sample after which the signal stays
  /// within `tolerance_sigmas` tail standard deviations of the tail mean
  /// for at least `hold` consecutive samples.
  double tolerance_sigmas = 3.0;
  std::size_t hold = 16;
};

/// Index of the first stationary sample, or nullopt when the signal never
/// settles inside the observation window (possible for LRD signals — the
/// paper's point about not knowing how long to simulate).
std::optional<std::size_t> transient_end(std::span<const double> signal,
                                         const TransientOptions& options = {});

/// MSER-5 (Marginal Standard Error Rule) truncation point: the prefix length
/// d minimizing the half-width of the confidence interval of the truncated
/// mean. A standard alternative estimator; exposed for cross-checking.
std::size_t mser_truncation(std::span<const double> signal,
                            std::size_t batch = 5);

}  // namespace cavenet::analysis

#endif  // CAVENET_ANALYSIS_TRANSIENT_H
