#include "analysis/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/stats.h"

namespace cavenet::analysis {

std::optional<std::size_t> transient_end(std::span<const double> signal,
                                         const TransientOptions& options) {
  const std::size_t n = signal.size();
  if (n < 8) throw std::invalid_argument("transient_end: signal too short");

  const auto tail_len = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(n) * options.tail_fraction));
  const auto tail = signal.subspan(n - tail_len);
  const double level = mean(tail);
  // Guard against a perfectly constant tail: allow a tiny absolute band.
  const double sigma = std::max(stddev(tail), 1e-12 * std::max(1.0, std::abs(level)));
  const double band = options.tolerance_sigmas * sigma;

  // Stationarity guard: a drifting signal (e.g. a ramp) has a "tail" whose
  // spread is dominated by the drift itself; its two halves disagree.
  const double first_half = mean(tail.subspan(0, tail_len / 2));
  const double second_half = mean(tail.subspan(tail_len / 2));
  if (std::abs(first_half - second_half) > band / 2.0) return std::nullopt;

  // The transient ends at the first sample that (a) starts an in-band run
  // of at least `hold` samples and (b) from which at least 95% of the
  // remaining signal stays in band (rare noise excursions beyond the
  // tolerance must not push the estimate to the end of the signal).
  std::vector<bool> in_band(n);
  for (std::size_t i = 0; i < n; ++i) {
    in_band[i] = std::abs(signal[i] - level) <= band;
  }
  std::vector<std::size_t> run_len(n + 1, 0);
  std::vector<std::size_t> suffix_in(n + 1, 0);
  for (std::size_t i = n; i-- > 0;) {
    run_len[i] = in_band[i] ? run_len[i + 1] + 1 : 0;
    suffix_in[i] = suffix_in[i + 1] + (in_band[i] ? 1 : 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (run_len[i] >= options.hold &&
        static_cast<double>(suffix_in[i]) >=
            0.95 * static_cast<double>(n - i)) {
      return i;
    }
  }
  return std::nullopt;
}

std::size_t mser_truncation(std::span<const double> signal, std::size_t batch) {
  const std::size_t n = signal.size();
  if (batch == 0 || n < 2 * batch) {
    throw std::invalid_argument("mser: need at least two batches");
  }
  // Batch means.
  std::vector<double> batches;
  batches.reserve(n / batch);
  for (std::size_t start = 0; start + batch <= n; start += batch) {
    batches.push_back(mean(signal.subspan(start, batch)));
  }
  const std::size_t m = batches.size();

  // For each truncation d (in batches), MSER statistic =
  // var(batches[d..]) / (m - d)^2; pick the d that minimizes it over the
  // first half (standard restriction to avoid the tail-dominated regime).
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_d = 0;
  for (std::size_t d = 0; d < m / 2; ++d) {
    const auto rest = std::span<const double>(batches).subspan(d);
    const auto k = static_cast<double>(rest.size());
    const double v = variance(rest);
    const double score = v / (k * k);
    if (score < best) {
      best = score;
      best_d = d;
    }
  }
  return best_d * batch;
}

}  // namespace cavenet::analysis
