#include "analysis/spectrum.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "analysis/fft.h"
#include "analysis/stats.h"

namespace cavenet::analysis {
namespace {

double window_value(Window window, std::size_t i, std::size_t n) noexcept {
  const double x = static_cast<double>(i) / static_cast<double>(n - 1);
  switch (window) {
    case Window::kRectangular:
      return 1.0;
    case Window::kHann:
      return 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * x);
    case Window::kHamming:
      return 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * x);
  }
  return 1.0;
}

/// Periodogram of one (already detrended) segment, accumulated into `acc`.
/// Returns the window power normalization U = sum(w^2)/n.
void accumulate_segment(std::span<const double> segment, Window window,
                        double sample_rate, std::vector<double>& acc) {
  const std::size_t n = next_power_of_two(segment.size());
  std::vector<std::complex<double>> data(n);
  double window_power = 0.0;
  for (std::size_t i = 0; i < segment.size(); ++i) {
    const double w = window_value(window, i, segment.size());
    window_power += w * w;
    data[i] = segment[i] * w;
  }
  fft_in_place(data);
  const double norm = 1.0 / (sample_rate * window_power);
  const std::size_t half = n / 2;
  if (acc.size() != half) acc.assign(half, 0.0);
  for (std::size_t k = 1; k <= half; ++k) {
    // One-sided PSD: double everything except Nyquist.
    const double mag2 = std::norm(data[k]);
    acc[k - 1] += (k == half ? 1.0 : 2.0) * mag2 * norm;
  }
}

Spectrum finalize(std::vector<double> acc, std::size_t padded,
                  std::size_t segments, double sample_rate) {
  Spectrum out;
  out.frequency.reserve(acc.size());
  out.power.reserve(acc.size());
  for (std::size_t k = 1; k <= acc.size(); ++k) {
    out.frequency.push_back(sample_rate * static_cast<double>(k) /
                            static_cast<double>(padded));
    out.power.push_back(acc[k - 1] / static_cast<double>(segments));
  }
  return out;
}

}  // namespace

Spectrum periodogram(std::span<const double> signal, double sample_rate,
                     Window window) {
  if (signal.size() < 2) throw std::invalid_argument("signal too short");
  const double m = mean(signal);
  std::vector<double> detrended(signal.begin(), signal.end());
  for (double& x : detrended) x -= m;
  std::vector<double> acc;
  accumulate_segment(detrended, window, sample_rate, acc);
  return finalize(std::move(acc), next_power_of_two(signal.size()), 1,
                  sample_rate);
}

Spectrum welch_psd(std::span<const double> signal, std::size_t segment,
                   double sample_rate, Window window) {
  if (segment < 2 || signal.size() < segment) {
    throw std::invalid_argument("welch: segment must satisfy 2 <= segment <= n");
  }
  segment = next_power_of_two(segment);
  if (segment > signal.size()) segment >>= 1;
  const std::size_t hop = segment / 2;
  const double m = mean(signal);
  std::vector<double> detrended(signal.begin(), signal.end());
  for (double& x : detrended) x -= m;

  std::vector<double> acc;
  std::size_t segments = 0;
  for (std::size_t start = 0; start + segment <= detrended.size();
       start += hop) {
    accumulate_segment(
        std::span<const double>(detrended).subspan(start, segment), window,
        sample_rate, acc);
    ++segments;
  }
  return finalize(std::move(acc), segment, segments, sample_rate);
}

double low_frequency_slope(const Spectrum& spectrum, double fraction) {
  const auto n = spectrum.frequency.size();
  const auto k = std::max<std::size_t>(3, static_cast<std::size_t>(
                                              static_cast<double>(n) * fraction));
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < std::min(k, n); ++i) {
    if (spectrum.power[i] <= 0.0) continue;
    const double x = std::log10(spectrum.frequency[i]);
    const double y = std::log10(spectrum.power[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++used;
  }
  if (used < 2) return 0.0;
  const auto un = static_cast<double>(used);
  const double denom = un * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (un * sxy - sx * sy) / denom;
}

}  // namespace cavenet::analysis
