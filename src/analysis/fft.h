// Radix-2 fast Fourier transform.
//
// The paper's SRD/LRD diagnostics (Fig. 7 periodograms) require spectral
// estimates; this is a dependency-free iterative Cooley-Tukey FFT.
#ifndef CAVENET_ANALYSIS_FFT_H
#define CAVENET_ANALYSIS_FFT_H

#include <complex>
#include <span>
#include <vector>

namespace cavenet::analysis {

/// True iff n is a power of two (and nonzero).
constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n) noexcept;

/// In-place forward FFT. data.size() must be a power of two.
void fft_in_place(std::span<std::complex<double>> data);

/// In-place inverse FFT (includes the 1/N scaling).
void ifft_in_place(std::span<std::complex<double>> data);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded size).
std::vector<std::complex<double>> fft_real(std::span<const double> signal);

}  // namespace cavenet::analysis

#endif  // CAVENET_ANALYSIS_FFT_H
