#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cavenet::analysis {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("histogram needs hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width_);
}

}  // namespace cavenet::analysis
