// Autocorrelation and the SRD/LRD summability diagnostic.
//
// The paper (footnote 2) defines a process as Short Range Dependent when
// its autocorrelation r(k) is summable, and Long Range Dependent otherwise.
#ifndef CAVENET_ANALYSIS_AUTOCORRELATION_H
#define CAVENET_ANALYSIS_AUTOCORRELATION_H

#include <span>
#include <vector>

namespace cavenet::analysis {

/// Biased sample autocorrelation r(0..max_lag); r(0) == 1 for non-constant
/// signals. Uses the FFT (O(n log n)).
std::vector<double> autocorrelation(std::span<const double> signal,
                                    std::size_t max_lag);

/// Partial sums S(K) = sum_{k=1..K} r(k): the growth of this sequence is the
/// summability diagnostic. For SRD signals it converges; for LRD it keeps
/// growing across decades of K.
std::vector<double> autocorrelation_partial_sums(std::span<const double> signal,
                                                 std::size_t max_lag);

/// Hurst exponent via rescaled-range (R/S) analysis. H ~ 0.5 for SRD,
/// H > 0.5 (typically 0.7+) for LRD/persistent signals.
double hurst_rs(std::span<const double> signal);

}  // namespace cavenet::analysis

#endif  // CAVENET_ANALYSIS_AUTOCORRELATION_H
