#include "analysis/autocorrelation.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "analysis/fft.h"
#include "analysis/stats.h"

namespace cavenet::analysis {

std::vector<double> autocorrelation(std::span<const double> signal,
                                    std::size_t max_lag) {
  const std::size_t n = signal.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: signal too short");
  max_lag = std::min(max_lag, n - 1);

  // Wiener-Khinchin: ACF = IFFT(|FFT(x - mean)|^2), zero-padded to 2n to
  // avoid circular wrap-around.
  const double m = mean(signal);
  const std::size_t padded = next_power_of_two(2 * n);
  std::vector<std::complex<double>> data(padded);
  for (std::size_t i = 0; i < n; ++i) data[i] = signal[i] - m;
  fft_in_place(data);
  for (auto& x : data) x = std::norm(x);
  ifft_in_place(data);

  const double r0 = data[0].real();
  std::vector<double> acf(max_lag + 1);
  if (r0 <= 0.0) {
    // Constant signal: define r(0)=1, r(k)=0 by convention.
    acf[0] = 1.0;
    return acf;
  }
  for (std::size_t k = 0; k <= max_lag; ++k) acf[k] = data[k].real() / r0;
  return acf;
}

std::vector<double> autocorrelation_partial_sums(std::span<const double> signal,
                                                 std::size_t max_lag) {
  const auto acf = autocorrelation(signal, max_lag);
  std::vector<double> sums;
  sums.reserve(acf.size() > 0 ? acf.size() - 1 : 0);
  double acc = 0.0;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    acc += acf[k];
    sums.push_back(acc);
  }
  return sums;
}

double hurst_rs(std::span<const double> signal) {
  const std::size_t n = signal.size();
  if (n < 32) throw std::invalid_argument("hurst_rs: need >= 32 samples");

  // R/S over a geometric ladder of window sizes; slope of log(R/S) vs log(w).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t points = 0;
  for (std::size_t w = 8; w <= n / 4; w *= 2) {
    double rs_sum = 0.0;
    std::size_t windows = 0;
    for (std::size_t start = 0; start + w <= n; start += w) {
      const auto seg = signal.subspan(start, w);
      const double m = mean(seg);
      double cum = 0.0, lo = 0.0, hi = 0.0, var = 0.0;
      for (const double x : seg) {
        cum += x - m;
        lo = std::min(lo, cum);
        hi = std::max(hi, cum);
        var += (x - m) * (x - m);
      }
      const double s = std::sqrt(var / static_cast<double>(w));
      if (s > 0.0) {
        rs_sum += (hi - lo) / s;
        ++windows;
      }
    }
    if (windows == 0) continue;
    const double rs = rs_sum / static_cast<double>(windows);
    if (rs <= 0.0) continue;
    const double x = std::log2(static_cast<double>(w));
    const double y = std::log2(rs);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++points;
  }
  if (points < 2) return 0.5;
  const auto p = static_cast<double>(points);
  const double denom = p * sxx - sx * sx;
  if (denom == 0.0) return 0.5;
  return (p * sxy - sx * sy) / denom;
}

}  // namespace cavenet::analysis
